//! Relative max-min fairness: the open question of §7 (R2).
//!
//! Lex-max-min fairness can starve a flow to `1/n` of its macro-switch
//! rate (Theorem 4.3) because it compares *absolute* rates: upholding many
//! small rates always beats upholding one large one. The paper's
//! conclusion proposes **relative max-min fairness** as the alternative
//! objective: judge a routing by each flow's rate *relative to its
//! macro-switch rate*, and max-min those ratios instead. Whether this
//! objective admits a constant-factor guarantee is open; this module makes
//! the objective computable so the question can be explored empirically:
//!
//! * [`search_relative_max_min`] — exact optimum by symmetry-pruned
//!   exhaustive search (small instances);
//! * [`relative_local_search`] — greedy seeding plus single-flow local
//!   search on the sorted ratio vector (any instance size).

use clos_fairness::{max_min_fair, Allocation, SortedRates};
use clos_net::{ClosNetwork, Flow, MacroSwitch, Routing};
use clos_rational::Rational;

use crate::compiled::EvalScratch;
use crate::macro_switch::macro_max_min;
use crate::objectives::SearchStats;
use crate::routers::{GreedyRouter, Router};
use crate::search::{run_search, Objective, Problem, SearchConfig};
use crate::RoutedAllocation;

/// The outcome of a relative max-min fairness optimization.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelativeOutcome {
    /// The chosen routing with its max-min fair allocation.
    pub routed: RoutedAllocation,
    /// Per-flow ratios `a(f) / a^MmF_MS(f)`, in flow order.
    pub ratios: Vec<Rational>,
}

impl RelativeOutcome {
    /// Returns the smallest ratio — the relative-max-min figure of merit.
    ///
    /// # Panics
    ///
    /// Panics if the flow collection was empty.
    #[must_use]
    pub fn min_ratio(&self) -> Rational {
        self.ratios
            .iter()
            .copied()
            .min()
            .expect("nonempty flow collection")
    }

    /// Returns the sorted ratio vector (the object being lexicographically
    /// maximized).
    #[must_use]
    pub fn sorted_ratios(&self) -> SortedRates<Rational> {
        Allocation::from_rates(self.ratios.clone()).sorted()
    }
}

/// Computes each flow's macro-switch max-min rate (the denominators of the
/// relative objective).
#[must_use]
pub fn macro_reference_rates(
    clos: &ClosNetwork,
    ms: &MacroSwitch,
    flows: &[Flow],
) -> Vec<Rational> {
    let ms_flows = ms.translate_flows(clos, flows);
    macro_max_min(ms, &ms_flows).rates().to_vec()
}

fn ratios_for(allocation: &Allocation<Rational>, reference: &[Rational]) -> Vec<Rational> {
    allocation
        .rates()
        .iter()
        .zip(reference)
        .map(|(a, m)| {
            debug_assert!(m.is_positive(), "macro-switch rates are positive");
            *a / *m
        })
        .collect()
}

fn outcome_for(
    clos: &ClosNetwork,
    flows: &[Flow],
    routing: Routing,
    reference: &[Rational],
) -> RelativeOutcome {
    let allocation =
        max_min_fair::<Rational>(clos.network(), flows, &routing).expect("finite links");
    let ratios = ratios_for(&allocation, reference);
    RelativeOutcome {
        routed: RoutedAllocation {
            routing,
            allocation,
        },
        ratios,
    }
}

/// Computes a relative-max-min fair allocation exactly: over all routings,
/// maximize in lexicographic order the sorted vector of per-flow ratios
/// `a_r^MmF(f) / a^MmF_MS(f)`.
///
/// Exponential in the number of flows (same enumeration as
/// [`search_lex_max_min`]); intended for small instances.
///
/// # Panics
///
/// Panics if `flows` is empty or a flow endpoint is invalid for
/// `clos`/`ms`.
///
/// # Examples
///
/// On Example 2.3, relative fairness spares the type-3 flow the haircut
/// that lex-max-min fairness imposes:
///
/// ```
/// use clos_core::constructions::example_2_3;
/// use clos_core::relative::search_relative_max_min;
/// use clos_rational::Rational;
///
/// let ex = example_2_3();
/// let (best, _) = search_relative_max_min(&ex.instance.clos, &ex.instance.ms, &ex.instance.flows);
/// // Every flow keeps at least 3/4 of its macro-switch rate — strictly
/// // better than the 2/3 the lex-max-min fair routing offers its worst
/// // flow in relative terms.
/// assert_eq!(best.min_ratio(), Rational::new(3, 4));
/// ```
///
/// [`search_lex_max_min`]: crate::objectives::search_lex_max_min
#[must_use]
pub fn search_relative_max_min(
    clos: &ClosNetwork,
    ms: &MacroSwitch,
    flows: &[Flow],
) -> (RelativeOutcome, SearchStats) {
    assert!(!flows.is_empty(), "need at least one flow");

    /// The relative objective: the sorted per-flow ratio vector, compared
    /// lexicographically. No admissible prefix bound is known in ratio
    /// space (the lex bound of the absolute objective does not transfer:
    /// dividing by per-flow references is not monotone under the sorted
    /// order), so this search benefits from the engine's symmetry
    /// reduction, compiled evaluation, and parallelism only.
    struct RelativeObjective<'r> {
        reference: &'r [Rational],
    }
    impl RelativeObjective<'_> {
        fn push_ratios(&self, rates: &[Rational], buf: &mut Vec<Rational>) {
            debug_assert!(
                self.reference.iter().all(|m| m.is_positive()),
                "macro-switch rates are positive"
            );
            buf.extend(rates.iter().zip(self.reference).map(|(a, m)| *a / *m));
        }
    }
    impl Objective for RelativeObjective<'_> {
        type Key = SortedRates<Rational>;

        fn key(&self, scratch: &mut EvalScratch) -> Self::Key {
            let mut ratios = Vec::with_capacity(scratch.rates().len());
            self.push_ratios(scratch.rates(), &mut ratios);
            SortedRates::from_unsorted(ratios)
        }

        fn beats(&self, incumbent: &Self::Key, scratch: &mut EvalScratch) -> bool {
            scratch.sorted_by(|rates, buf| self.push_ratios(rates, buf)) > incumbent.rates()
        }

        fn prefix_bound(
            &self,
            _problem: &Problem<'_>,
            _prefix: &[usize],
            _scratch: &mut EvalScratch,
        ) -> Option<Self::Key> {
            None
        }
    }

    let reference = macro_reference_rates(clos, ms, flows);
    let objective = RelativeObjective {
        reference: &reference,
    };
    let (assignment, stats) = run_search(clos, flows, &objective, SearchConfig::default());
    let routing: Routing = flows
        .iter()
        .zip(&assignment)
        .map(|(&f, &m)| clos.path_via(f, m))
        .collect();
    (outcome_for(clos, flows, routing, &reference), stats)
}

/// Approximates a relative-max-min fair allocation: greedy seeding, then
/// single-flow moves that lexicographically improve the sorted ratio
/// vector, for at most `max_rounds` passes.
///
/// # Panics
///
/// Panics if `flows` is empty or a flow endpoint is invalid for
/// `clos`/`ms`.
#[must_use]
pub fn relative_local_search(
    clos: &ClosNetwork,
    ms: &MacroSwitch,
    flows: &[Flow],
    max_rounds: usize,
) -> RelativeOutcome {
    assert!(!flows.is_empty(), "need at least one flow");
    let n = clos.middle_count();
    let reference = macro_reference_rates(clos, ms, flows);

    let demands = crate::routers::macro_demands(clos, ms, flows);
    let seed_routing = GreedyRouter::new().route(clos, &demands, flows);
    let mut assignment: Vec<usize> = (0..flows.len())
        .map(|i| {
            clos.middle_of_path(&seed_routing.paths()[i])
                .expect("greedy paths cross the fabric")
        })
        .collect();

    let evaluate = |assignment: &[usize]| -> (SortedRates<Rational>, RelativeOutcome) {
        let routing: Routing = flows
            .iter()
            .zip(assignment)
            .map(|(&f, &m)| clos.path_via(f, m))
            .collect();
        let outcome = outcome_for(clos, flows, routing, &reference);
        (outcome.sorted_ratios(), outcome)
    };

    let (mut best_sorted, mut best_outcome) = evaluate(&assignment);
    for _ in 0..max_rounds {
        let mut improved = false;
        // Phase 1: single-flow moves.
        for i in 0..flows.len() {
            let original = assignment[i];
            for m in 0..n {
                if m == original {
                    continue;
                }
                assignment[i] = m;
                let (sorted, outcome) = evaluate(&assignment);
                if sorted > best_sorted {
                    best_sorted = sorted;
                    best_outcome = outcome;
                    improved = true;
                    break; // keep the move
                }
                assignment[i] = original;
            }
        }
        // Phase 2: pair moves, which escape the plateaus single moves
        // cannot (e.g. pairing two flows on one uplink so both drop a
        // little instead of one dropping a lot).
        if !improved {
            'pairs: for i in 0..flows.len() {
                for j in (i + 1)..flows.len() {
                    let (oi, oj) = (assignment[i], assignment[j]);
                    for mi in 0..n {
                        for mj in 0..n {
                            if (mi, mj) == (oi, oj) {
                                continue;
                            }
                            assignment[i] = mi;
                            assignment[j] = mj;
                            let (sorted, outcome) = evaluate(&assignment);
                            if sorted > best_sorted {
                                best_sorted = sorted;
                                best_outcome = outcome;
                                improved = true;
                                break 'pairs;
                            }
                        }
                    }
                    assignment[i] = oi;
                    assignment[j] = oj;
                }
            }
        }
        if !improved {
            break;
        }
    }
    best_outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::{example_2_3, theorem_4_3};
    use crate::objectives::search_lex_max_min;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn example_2_3_relative_optimum_protects_type3() {
        let ex = example_2_3();
        let (best, stats) =
            search_relative_max_min(&ex.instance.clos, &ex.instance.ms, &ex.instance.flows);
        assert!(stats.routings_examined > 0);
        // The relative optimum is NOT the paper's routing 1 (whose ratios
        // are [2/3, 1, 1, 1, 1, 1]): pairing the two type-2 flows on one
        // uplink costs each of them only a 3/4 ratio while every other
        // flow — including type 3 — keeps its macro-switch rate.
        assert_eq!(best.min_ratio(), r(3, 4));
        // The corresponding allocation trades absolute fairness away...
        assert_eq!(
            best.routed.allocation.sorted().rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(1, 2), r(1, 2), Rational::ONE]
        );
        // ...so the absolute lex optimum strictly dominates it in the
        // absolute order, while it strictly dominates the lex optimum in
        // the relative order: the two objectives genuinely diverge.
        let (lex, _) = search_lex_max_min(&ex.instance.clos, &ex.instance.flows);
        assert!(lex.allocation.sorted() > best.routed.allocation.sorted());
    }

    #[test]
    fn relative_ratios_are_at_most_slightly_above_one() {
        // A flow can exceed its macro-switch rate only if another is
        // degraded; on the trivial instance all ratios are exactly 1.
        let clos = ClosNetwork::standard(2);
        let ms = MacroSwitch::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
        ];
        let (best, _) = search_relative_max_min(&clos, &ms, &flows);
        assert!(best.ratios.iter().all(|&x| x == Rational::ONE));
        assert_eq!(best.min_ratio(), Rational::ONE);
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_instance() {
        let ex = example_2_3();
        let (exact, _) =
            search_relative_max_min(&ex.instance.clos, &ex.instance.ms, &ex.instance.flows);
        let heuristic =
            relative_local_search(&ex.instance.clos, &ex.instance.ms, &ex.instance.flows, 8);
        assert_eq!(heuristic.min_ratio(), exact.min_ratio());
    }

    #[test]
    fn relative_objective_on_theorem_4_3_beats_starvation_sometimes() {
        // The open question: lex-max-min yields min ratio 1/n; relative
        // local search must do at least as well as the lex certificate's
        // worst ratio (it directly optimizes the ratio).
        let t = theorem_4_3(3);
        let heuristic =
            relative_local_search(&t.instance.clos, &t.instance.ms, &t.instance.flows, 4);
        // The certificate's worst ratio is 1/3 (the type-3 flow).
        assert!(
            heuristic.min_ratio() >= r(1, 4),
            "local search min ratio {}",
            heuristic.min_ratio()
        );
        // And no flow's ratio exceeds its fair-share blow-up bound n.
        assert!(heuristic
            .ratios
            .iter()
            .all(|&x| x <= Rational::from_integer(3)));
    }

    #[test]
    fn macro_reference_rates_match_macro_allocation() {
        let ex = example_2_3();
        let reference =
            macro_reference_rates(&ex.instance.clos, &ex.instance.ms, &ex.instance.flows);
        assert_eq!(reference, ex.instance.macro_allocation().rates());
    }

    #[test]
    fn sorted_ratios_order() {
        let outcome = RelativeOutcome {
            routed: RoutedAllocation {
                routing: Routing::new(vec![]),
                allocation: Allocation::from_rates(vec![r(1, 2), Rational::ONE]),
            },
            ratios: vec![Rational::ONE, r(1, 2)],
        };
        assert_eq!(outcome.min_ratio(), r(1, 2));
        assert_eq!(outcome.sorted_ratios().rates(), &[r(1, 2), Rational::ONE]);
    }
}
