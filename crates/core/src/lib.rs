//! The core of the clos-routing workspace: routing objectives,
//! impossibility constructions, and routing algorithms for Clos data-center
//! networks with unsplittable flows under max-min fair congestion control.
//!
//! This crate implements the primary contribution of Ferreira, Atre, Sherry
//! & Sobrinho, *"Impossibility Results for Data-Center Routing with
//! Congestion Control and Unsplittable Flows"* (PODC '24), on top of the
//! substrates in `clos-net` (topologies), `clos-graph` (matching, coloring,
//! max-flow), and `clos-fairness` (water-filling max-min fairness):
//!
//! * [`macro_switch`] — analysis of the macro-switch abstraction `MS_n`:
//!   its unique max-min fair allocation, the matching-based maximum
//!   throughput allocation (Lemma 3.2), and the **price of fairness**
//!   bounded by Theorem 3.4 (`T^MmF ≥ ½ T^MT`, tight).
//! * [`objectives`] — the two routing objectives of §2.3 computed
//!   *exactly* by symmetry-pruned exhaustive search over routings:
//!   lex-max-min fair allocations (Definition 2.4) and throughput-max-min
//!   fair allocations (Definition 2.5).
//! * [`search`] — the deterministic parallel branch-and-bound engine
//!   behind [`objectives`] and [`relative`]: combined symmetry reduction,
//!   admissible per-prefix bounds, and prefix-splitting parallelism with
//!   byte-identical results for any thread count.
//! * [`compiled`] — the compiled evaluation pipeline under [`search`]:
//!   dense flow→link incidence tables built once per instance plus a
//!   per-worker scratch, so each routing evaluation is an O(flows) table
//!   walk with zero steady-state heap allocations.
//! * [`doom_switch`] — Algorithm 1, the Doom-Switch routing that
//!   approximates a throughput-max-min fair allocation and realizes the
//!   tight factor-2 gain of Theorem 5.4.
//! * [`constructions`] — the adversarial flow collections of Figures 1–4
//!   and Theorems 3.4, 4.2, 4.3, and 5.4, together with the paper's
//!   predicted rates (Lemmas 4.4 and 4.6) as checkable data.
//! * [`replication`] — feasibility of replicating macro-switch rates in
//!   the Clos network (Theorem 4.2's notion), by exact backtracking search
//!   and by a first-fit heuristic.
//! * [`routers`] — practical routing baselines evaluated in the paper's
//!   extended version: ECMP, greedy congestion-aware routing on
//!   macro-switch rates (à la Hedera), and local search.
//! * [`relative`] — **relative max-min fairness**, the alternative
//!   objective the paper's conclusion leaves open: max-min over the ratios
//!   of network rates to macro-switch rates, computable exactly on small
//!   instances and heuristically on large ones.
//! * [`splittable`] — the §1 baseline regimes where the macro-switch
//!   abstraction *is* exact: splittable flows (hose-model proportional
//!   routing) and admission control (link-disjoint unit flows).
//! * [`audit`] — one-stop diagnosis of any routing: allocation, bottleneck
//!   placement (host vs fabric), ratios against the macro-switch, and the
//!   universal throughput bounds.
//! * [`lp_models`] — exact LP formulations (iterative max-min fairness,
//!   splittable relaxations) over the `clos-lp` simplex, used as an
//!   independent oracle against the water-filling allocator.
//!
//! # Quick start
//!
//! Reproduce Theorem 4.3's starvation result for `n = 3`: the flow whose
//! macro-switch rate is 1 is held to `1/n` by the *fairest possible*
//! routing:
//!
//! ```
//! use clos_core::constructions::theorem_4_3;
//! use clos_rational::Rational;
//!
//! let t = theorem_4_3(3);
//! // Macro-switch: the type-3 flow gets rate 1 (Lemma 4.4).
//! assert_eq!(t.instance.macro_allocation().rate(t.type3_flow()), Rational::ONE);
//! // Lex-max-min fair routing (Lemma 4.6 certificate): it is starved to 1/n.
//! assert_eq!(t.certificate().allocation.rate(t.type3_flow()), Rational::new(1, 3));
//! ```

pub mod audit;
pub mod compiled;
pub mod constructions;
pub mod doom_switch;
pub mod graphs;
pub mod lp_models;
pub mod macro_switch;
pub mod objectives;
pub mod relative;
pub mod replication;
pub mod routers;
pub mod search;
pub mod splittable;

mod routed;

pub use crate::routed::RoutedAllocation;
