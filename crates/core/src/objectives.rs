//! The routing objectives of §2.3, computed exactly by exhaustive search.
//!
//! In a Clos network `C_n`, a collection of `F` flows admits `n^F` routings
//! (each flow independently picks a middle switch). The paper's two
//! objectives optimize over all of them:
//!
//! * **lex-max-min fairness** (Definition 2.4): maximize the sorted
//!   max-min-fair rate vector in lexicographic order;
//! * **throughput-max-min fairness** (Definition 2.5): maximize the
//!   throughput of the max-min fair allocation.
//!
//! Both are computed here by enumeration with two sound symmetry
//! reductions (all links have equal capacity, so relabeling middle switches
//! and permuting identical flows preserve allocations):
//!
//! * flows between the same source–destination pair are interchangeable,
//!   so only sorted middle assignments are enumerated within such a group;
//! * when all flows are distinct, middle labels are canonicalized by first
//!   use (flow `i` may only use a middle index at most one above the
//!   largest used so far).
//!
//! Exhaustive search is exponential; it is intended for the small instances
//! where the paper's statements are verified end-to-end (`n ≤ 3`, a dozen
//! flows). The adversarial constructions for large `n` come with optimal
//! *certificate* routings from the paper's proofs instead (see
//! [`constructions`]).
//!
//! [`constructions`]: crate::constructions

use clos_fairness::{max_min_fair, Allocation};
use clos_net::{ClosNetwork, Flow, Routing};
use clos_rational::Rational;
use clos_telemetry::{counters, timers};

use crate::RoutedAllocation;

/// Statistics from an exhaustive routing search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SearchStats {
    /// Number of (canonical) routings whose allocation was evaluated.
    pub routings_examined: u64,
    /// Number of times the incumbent optimum was replaced (including the
    /// first routing examined).
    pub improvements: u64,
}

/// Invokes `visit` with every canonical middle-switch assignment for
/// `flows` in `clos`.
///
/// The assignment slice maps flow positions to middle-switch indices. At
/// least one representative of every routing orbit (under middle-switch
/// relabeling and identical-flow permutation) is visited.
///
/// # Panics
///
/// Panics if any flow endpoint is not a source/destination of `clos`.
pub fn for_each_canonical_assignment(
    clos: &ClosNetwork,
    flows: &[Flow],
    mut visit: impl FnMut(&[usize]),
) {
    let n = clos.middle_count();
    if flows.is_empty() {
        counters::SEARCH_ASSIGNMENTS.incr();
        visit(&[]);
        return;
    }

    // Group consecutive positions of identical flows: assignments within a
    // group are enumerated in non-decreasing order.
    let mut group_of = vec![0usize; flows.len()];
    {
        use std::collections::BTreeMap;
        let mut seen: BTreeMap<(clos_net::NodeId, clos_net::NodeId), usize> = BTreeMap::new();
        let mut next = 0;
        for (i, f) in flows.iter().enumerate() {
            let key = (f.src(), f.dst());
            let g = *seen.entry(key).or_insert_with(|| {
                let g = next;
                next += 1;
                g
            });
            group_of[i] = g;
        }
    }
    let all_distinct = {
        let mut counts = std::collections::BTreeMap::new();
        for &g in &group_of {
            *counts.entry(g).or_insert(0usize) += 1;
        }
        counts.values().all(|&c| c == 1)
    };
    // Previous position in the same group, for the sortedness constraint.
    let mut prev_in_group = vec![None; flows.len()];
    {
        let mut last: std::collections::BTreeMap<usize, usize> = std::collections::BTreeMap::new();
        for i in 0..flows.len() {
            if let Some(&p) = last.get(&group_of[i]) {
                prev_in_group[i] = Some(p);
            }
            last.insert(group_of[i], i);
        }
    }

    let mut assignment = vec![0usize; flows.len()];
    // Iterative depth-first enumeration.
    fn recurse(
        i: usize,
        n: usize,
        all_distinct: bool,
        prev_in_group: &[Option<usize>],
        assignment: &mut Vec<usize>,
        visit: &mut impl FnMut(&[usize]),
    ) {
        if i == assignment.len() {
            counters::SEARCH_ASSIGNMENTS.incr();
            visit(assignment);
            return;
        }
        let lower = prev_in_group[i].map_or(0, |p| assignment[p]);
        let upper = if all_distinct {
            // First-use canonicalization of middle labels.
            let max_used = assignment[..i].iter().copied().max().map_or(0, |m| m + 1);
            (max_used + 1).min(n)
        } else {
            n
        };
        for m in lower..upper {
            assignment[i] = m;
            recurse(i + 1, n, all_distinct, prev_in_group, assignment, visit);
        }
    }
    recurse(
        0,
        n,
        all_distinct,
        &prev_in_group,
        &mut assignment,
        &mut visit,
    );
}

fn routing_from_assignment(clos: &ClosNetwork, flows: &[Flow], assignment: &[usize]) -> Routing {
    flows
        .iter()
        .zip(assignment)
        .map(|(&f, &m)| clos.path_via(f, m))
        .collect()
}

/// Exhaustively searches canonical routings, keeping the routing whose
/// max-min fair allocation maximizes `key`.
///
/// Both objectives reduce to this: lex-max-min uses the sorted rate vector
/// as the key, throughput-max-min uses the total throughput. The shared
/// loop guarantees both report identical [`SearchStats`] semantics and feed
/// the same telemetry counters.
fn search_best_by<K: PartialOrd>(
    clos: &ClosNetwork,
    flows: &[Flow],
    mut key: impl FnMut(&Allocation<Rational>) -> K,
) -> (RoutedAllocation, SearchStats) {
    let _span = timers::SEARCH.scope();
    counters::SEARCH_RUNS.incr();
    let mut best: Option<RoutedAllocation> = None;
    let mut best_key: Option<K> = None;
    let mut examined = 0u64;
    let mut improvements = 0u64;
    for_each_canonical_assignment(clos, flows, |assignment| {
        examined += 1;
        let routing = routing_from_assignment(clos, flows, assignment);
        let allocation = max_min_fair::<Rational>(clos.network(), flows, &routing)
            .expect("Clos links are finite");
        let candidate = key(&allocation);
        let better = match &best_key {
            None => true,
            Some(current) => candidate > *current,
        };
        if better {
            improvements += 1;
            counters::SEARCH_IMPROVEMENTS.incr();
            best_key = Some(candidate);
            best = Some(RoutedAllocation {
                routing,
                allocation,
            });
        }
    });
    (
        best.expect("at least one routing exists"),
        SearchStats {
            routings_examined: examined,
            improvements,
        },
    )
}

/// Computes a lex-max-min fair allocation `a^L-MmF` (Definition 2.4) by
/// exhaustive search, returning the optimal routing, its allocation, and
/// search statistics.
///
/// # Panics
///
/// Panics if `flows` is empty-endpoint-invalid for `clos`. The search is
/// exponential in the number of flows; see the module docs for intended
/// instance sizes.
#[must_use]
pub fn search_lex_max_min(clos: &ClosNetwork, flows: &[Flow]) -> (RoutedAllocation, SearchStats) {
    search_best_by(clos, flows, Allocation::sorted)
}

/// Computes a lex-max-min fair allocation (Definition 2.4); convenience
/// wrapper over [`search_lex_max_min`].
///
/// # Panics
///
/// See [`search_lex_max_min`].
///
/// # Examples
///
/// For Example 2.3's flows in `C_2`, the lex-max-min sorted vector is
/// `[1/3, 1/3, 1/3, 2/3, 2/3, 2/3]` — strictly below the macro-switch's
/// `[1/3, 1/3, 1/3, 2/3, 2/3, 1]`:
///
/// ```
/// use clos_core::constructions::example_2_3;
/// use clos_core::objectives::lex_max_min;
/// use clos_rational::Rational;
///
/// let ex = example_2_3();
/// let best = lex_max_min(&ex.instance.clos, &ex.instance.flows);
/// let r = |n, d| Rational::new(n, d);
/// assert_eq!(
///     best.allocation.sorted().rates(),
///     &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), r(2, 3)]
/// );
/// ```
#[must_use]
pub fn lex_max_min(clos: &ClosNetwork, flows: &[Flow]) -> RoutedAllocation {
    search_lex_max_min(clos, flows).0
}

/// Computes a throughput-max-min fair allocation `a^T-MmF`
/// (Definition 2.5) by exhaustive search.
///
/// # Panics
///
/// See [`search_lex_max_min`].
#[must_use]
pub fn search_throughput_max_min(
    clos: &ClosNetwork,
    flows: &[Flow],
) -> (RoutedAllocation, SearchStats) {
    search_best_by(clos, flows, Allocation::throughput)
}

/// Computes a throughput-max-min fair allocation (Definition 2.5);
/// convenience wrapper over [`search_throughput_max_min`].
///
/// # Panics
///
/// See [`search_lex_max_min`].
#[must_use]
pub fn throughput_max_min(clos: &ClosNetwork, flows: &[Flow]) -> RoutedAllocation {
    search_throughput_max_min(clos, flows).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use clos_fairness::verify_bottleneck_property;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn example_2_3_flows(clos: &ClosNetwork) -> Vec<Flow> {
        vec![
            Flow::new(clos.source(0, 1), clos.destination(0, 1)),
            Flow::new(clos.source(0, 1), clos.destination(1, 0)),
            Flow::new(clos.source(0, 1), clos.destination(1, 1)),
            Flow::new(clos.source(1, 0), clos.destination(1, 0)),
            Flow::new(clos.source(1, 1), clos.destination(1, 1)),
            Flow::new(clos.source(0, 0), clos.destination(0, 0)),
        ]
    }

    #[test]
    fn canonical_enumeration_counts() {
        let clos = ClosNetwork::standard(2);
        // Three distinct flows, first-use canonicalization: assignments are
        // 0xx with x in {0,1} once a second label is introduced:
        // 000, 001, 010, 011 -> 4 instead of 8.
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
            Flow::new(clos.source(1, 0), clos.destination(3, 0)),
        ];
        let mut count = 0;
        for_each_canonical_assignment(&clos, &flows, |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn identical_flows_enumerate_multisets() {
        let clos = ClosNetwork::standard(3);
        // Three identical flows over 3 middles: multisets of size 3 from 3
        // = C(5,2) = 10 instead of 27.
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(3, 0)); 3];
        let mut count = 0;
        let mut sorted_ok = true;
        for_each_canonical_assignment(&clos, &flows, |a| {
            count += 1;
            sorted_ok &= a.windows(2).all(|w| w[0] <= w[1]);
        });
        assert_eq!(count, 10);
        assert!(sorted_ok);
    }

    #[test]
    fn empty_collection_has_one_routing() {
        let clos = ClosNetwork::standard(2);
        let mut count = 0;
        for_each_canonical_assignment(&clos, &[], |a| {
            assert!(a.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn lex_max_min_on_example_2_3() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let (best, stats) = search_lex_max_min(&clos, &flows);
        assert!(stats.routings_examined >= 1);
        assert_eq!(
            best.allocation.sorted().rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), r(2, 3)]
        );
        // The optimum is itself max-min fair for its routing.
        assert!(verify_bottleneck_property(
            clos.network(),
            &flows,
            &best.routing,
            &best.allocation,
            Rational::ZERO
        )
        .is_ok());
    }

    #[test]
    fn throughput_max_min_on_example_2_3() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let best = throughput_max_min(&clos, &flows);
        // Both routings of Example 2.3 total 3 (so does the macro-switch
        // allocation); no routing beats it here. The type-1 source link
        // caps its three flows at 1 in aggregate, and each type-2/type-3
        // flow at 1.
        assert_eq!(best.throughput(), Rational::from_integer(3));
    }

    #[test]
    fn single_flow_gets_rate_one() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(2, 1))];
        let best = lex_max_min(&clos, &flows);
        assert_eq!(best.allocation.rates(), &[Rational::ONE]);
        let best = throughput_max_min(&clos, &flows);
        assert_eq!(best.allocation.rates(), &[Rational::ONE]);
    }

    #[test]
    fn two_flows_same_tor_pair_split_across_middles() {
        let clos = ClosNetwork::standard(2);
        // Two flows from distinct sources under ToR 0 to distinct
        // destinations under ToR 2: on one middle they'd share the uplink
        // (1/2 each); lex-max-min spreads them (1 each).
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
        ];
        let best = lex_max_min(&clos, &flows);
        assert_eq!(best.allocation.rates(), &[Rational::ONE, Rational::ONE]);
        let m0 = clos.middle_of_path(best.routing.path(clos_net::FlowId::new(0)));
        let m1 = clos.middle_of_path(best.routing.path(clos_net::FlowId::new(1)));
        assert_ne!(m0, m1);
    }

    #[test]
    fn lex_optimum_dominates_every_examined_routing() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let best = lex_max_min(&clos, &flows);
        let best_sorted = best.allocation.sorted();
        for_each_canonical_assignment(&clos, &flows, |assignment| {
            let routing = routing_from_assignment(&clos, &flows, assignment);
            let a = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
            assert!(best_sorted >= a.sorted());
        });
    }

    #[test]
    fn throughput_optimum_dominates_every_examined_routing() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let best = throughput_max_min(&clos, &flows);
        for_each_canonical_assignment(&clos, &flows, |assignment| {
            let routing = routing_from_assignment(&clos, &flows, assignment);
            let a = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
            assert!(best.throughput() >= a.throughput());
        });
    }
}
