//! The routing objectives of §2.3, computed exactly by exhaustive search.
//!
//! In a Clos network `C_n`, a collection of `F` flows admits `n^F` routings
//! (each flow independently picks a middle switch). The paper's two
//! objectives optimize over all of them:
//!
//! * **lex-max-min fairness** (Definition 2.4): maximize the sorted
//!   max-min-fair rate vector in lexicographic order;
//! * **throughput-max-min fairness** (Definition 2.5): maximize the
//!   throughput of the max-min fair allocation.
//!
//! Both are computed by the deterministic parallel branch-and-bound engine
//! in [`search`](crate::search), which enumerates one representative per
//! routing orbit (all links have equal capacity, so relabeling middle
//! switches and permuting identical flows preserve allocations) under the
//! *combined* symmetry reduction:
//!
//! * flows between the same source–destination pair are interchangeable,
//!   so middle assignments are non-decreasing within such a group; and
//! * simultaneously, middle labels are canonicalized by first use (a flow
//!   may only use a middle index at most one above the largest used so
//!   far).
//!
//! # Tie-breaking
//!
//! When several routings attain the optimal key, the **first canonical
//! assignment in lexicographic order wins**. This choice is what makes the
//! parallel search checkable: the engine returns byte-identical results
//! and [`SearchStats`] for any thread count (see the determinism notes in
//! [`search`](crate::search)).
//!
//! Exhaustive search is exponential; it is intended for the small instances
//! where the paper's statements are verified end-to-end (`n ≤ 4`, a dozen
//! flows). The adversarial constructions for large `n` come with optimal
//! *certificate* routings from the paper's proofs instead (see
//! [`constructions`]).
//!
//! [`constructions`]: crate::constructions

use clos_fairness::max_min_fair;
use clos_net::{Fabric, Flow, Routing};
use clos_rational::Rational;
use clos_telemetry::counters;

use crate::search::{
    run_search, walk_completions, CanonicalSpace, LexMaxMin, SearchConfig, ThroughputMaxMin,
    Visitor,
};
use crate::RoutedAllocation;

/// Statistics from an exhaustive routing search.
///
/// Every field (including the whole [`profile`](Self::profile)) is
/// deterministic: for a given instance and objective it is identical
/// whatever the thread count (see [`search`](crate::search)).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SearchStats {
    /// Number of (canonical) routings whose allocation was evaluated.
    /// With pruning, this is at most the canonical enumeration size.
    pub routings_examined: u64,
    /// Number of times the incumbent optimum was replaced (including the
    /// first routing examined).
    pub improvements: u64,
    /// Number of assignment subtrees skipped because their admissible
    /// objective bound could not beat an incumbent.
    pub pruned: u64,
    /// Per-depth histograms, prune provenance, and sampled branches.
    pub profile: SearchProfile,
}

/// Where the search tree's work went: per-depth histograms and
/// prune-provenance counters, plus an optional sampled branch trace.
///
/// Every counter is accumulated per block and merged by summation in
/// block order, so the whole profile — like [`SearchStats`] — is
/// byte-identical for any thread count. Depth-indexed vectors have
/// length `flows + 1` (index = prefix length); positions shallower than
/// the block-decomposition depth stay zero because the engine walks
/// inside blocks only.
///
/// The three prune provenances are disjoint:
///
/// * [`symmetry_skipped`](Self::symmetry_skipped) — branches never
///   generated because the combined symmetry reduction admits fewer than
///   `n` middle choices at a node;
/// * [`bound_pruned`](Self::bound_pruned) /
///   [`root_pruned`](Self::root_pruned) — subtrees generated but cut by
///   the admissible prefix bound (inside a block vs. a whole block at
///   its root; the two sum to [`SearchStats::pruned`]);
/// * [`blocks_exhausted`](Self::blocks_exhausted) — blocks walked to
///   exhaustion, the only way leaves are reached.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SearchProfile {
    /// `depth_nodes[d]`: interior prefixes of length `d` expanded (their
    /// admissible middle choices enumerated).
    pub depth_nodes: Vec<u64>,
    /// `depth_pruned[d]`: subtrees cut by the prefix bound at a prefix
    /// of length `d` (block-root prunes included at the block depth).
    pub depth_pruned: Vec<u64>,
    /// `depth_improvements[d]`: incumbent improvements whose assignment
    /// first diverges from the previous incumbent at position `d` (the
    /// initial seed incumbent is counted at depth 0).
    pub depth_improvements: Vec<u64>,
    /// Middle choices rejected by canonicality (group-sortedness or
    /// first-use labeling) across all expanded nodes: at a node with
    /// `a` admissible of `n` middles, `n - a` branches are skipped.
    pub symmetry_skipped: u64,
    /// Subtrees cut by the prefix bound strictly inside a block.
    pub bound_pruned: u64,
    /// Whole blocks cut by the prefix bound at their root prefix.
    pub root_pruned: u64,
    /// Blocks walked to exhaustion (not root-pruned).
    pub blocks_exhausted: u64,
    /// Deterministically sampled leaves (see
    /// [`SearchConfig::trace_sample`]), in lexicographic order, capped at
    /// [`SearchProfile::MAX_SAMPLED`].
    pub sampled: Vec<SampledBranch>,
}

impl SearchProfile {
    /// Global cap on [`sampled`](Self::sampled) after merging, so the
    /// trace stays bounded on huge searches.
    pub const MAX_SAMPLED: usize = 64;

    /// An empty profile with depth vectors sized for `flows` flows.
    #[must_use]
    pub fn for_depth(flows: usize) -> SearchProfile {
        SearchProfile {
            depth_nodes: vec![0; flows + 1],
            depth_pruned: vec![0; flows + 1],
            depth_improvements: vec![0; flows + 1],
            ..SearchProfile::default()
        }
    }

    /// Folds another block's profile into this one (elementwise sums;
    /// samples are appended and truncated to
    /// [`MAX_SAMPLED`](Self::MAX_SAMPLED)). Call in block order to keep
    /// the retained sample prefix deterministic.
    pub fn merge(&mut self, other: &SearchProfile) {
        fn add_into(acc: &mut Vec<u64>, other: &[u64]) {
            if acc.len() < other.len() {
                acc.resize(other.len(), 0);
            }
            for (a, b) in acc.iter_mut().zip(other) {
                *a += b;
            }
        }
        add_into(&mut self.depth_nodes, &other.depth_nodes);
        add_into(&mut self.depth_pruned, &other.depth_pruned);
        add_into(&mut self.depth_improvements, &other.depth_improvements);
        self.symmetry_skipped += other.symmetry_skipped;
        self.bound_pruned += other.bound_pruned;
        self.root_pruned += other.root_pruned;
        self.blocks_exhausted += other.blocks_exhausted;
        let room = SearchProfile::MAX_SAMPLED.saturating_sub(self.sampled.len());
        self.sampled
            .extend(other.sampled.iter().take(room).cloned());
    }
}

/// One deterministically sampled leaf of the search tree (the sampled
/// branch-trace mode, [`SearchConfig::trace_sample`]).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SampledBranch {
    /// Index of the prefix block the leaf belongs to.
    pub block: usize,
    /// The complete canonical middle-switch assignment.
    pub assignment: Vec<usize>,
    /// Whether this leaf improved its block-local incumbent.
    pub improved: bool,
}

/// Invokes `visit` with every canonical routing-class assignment for
/// `flows` in `fabric`, in lexicographic order.
///
/// The assignment slice maps flow positions to routing-class indices
/// (middle switches on Clos). At least one representative of every
/// routing orbit (under interchange of equivalent routing classes and
/// identical-flow permutation) is visited: the lexicographically least
/// element of each orbit is always emitted. The enumeration is iterative
/// (explicit stack), so large flow collections cannot overflow the call
/// stack.
///
/// # Panics
///
/// Panics if any flow endpoint is not a source/destination of `fabric`.
pub fn for_each_canonical_assignment<F: Fabric>(
    fabric: &F,
    flows: &[Flow],
    visit: impl FnMut(&[usize]),
) {
    struct Each<V>(V);
    impl<V: FnMut(&[usize])> Visitor for Each<V> {
        fn leaf(&mut self, assignment: &[usize]) {
            counters::SEARCH_ASSIGNMENTS.incr();
            (self.0)(assignment);
        }
    }
    let space = CanonicalSpace::new(fabric, flows);
    let mut assignment = vec![0usize; flows.len()];
    let mut used = space.rows(flows.len());
    walk_completions(&space, &mut assignment, &mut used, 0, &mut Each(visit));
}

fn routing_from_assignment<F: Fabric>(fabric: &F, flows: &[Flow], assignment: &[usize]) -> Routing {
    flows
        .iter()
        .zip(assignment)
        .map(|(&f, &c)| fabric.path_via_class(f, c))
        .collect()
}

/// Rebuilds the winning routing and allocation once, after the search.
///
/// The scan itself only tracks the best canonical assignment and key;
/// materializing `Routing` + `Allocation` per improvement would allocate
/// proportionally to the improvement count for no benefit.
fn finish<F: Fabric>(fabric: &F, flows: &[Flow], assignment: &[usize]) -> RoutedAllocation {
    let routing = routing_from_assignment(fabric, flows, assignment);
    let allocation = max_min_fair::<Rational>(fabric.network(), flows, &routing)
        .expect("fabric links are finite");
    RoutedAllocation {
        routing,
        allocation,
    }
}

/// Computes a lex-max-min fair allocation `a^L-MmF` (Definition 2.4) by
/// exhaustive search, returning the optimal routing, its allocation, and
/// search statistics.
///
/// On key ties, the first canonical assignment in lexicographic order
/// wins, independent of the thread count.
///
/// # Panics
///
/// Panics if `flows` is empty-endpoint-invalid for `fabric`. The search
/// is exponential in the number of flows; see the module docs for
/// intended instance sizes.
#[must_use]
pub fn search_lex_max_min<F: Fabric + Sync>(
    fabric: &F,
    flows: &[Flow],
) -> (RoutedAllocation, SearchStats) {
    search_lex_max_min_with(fabric, flows, SearchConfig::default())
}

/// [`search_lex_max_min`] with explicit engine configuration (thread
/// count, pruning toggle). Results are identical for every configuration;
/// only statistics and wall time differ.
///
/// # Panics
///
/// See [`search_lex_max_min`].
#[must_use]
pub fn search_lex_max_min_with<F: Fabric + Sync>(
    fabric: &F,
    flows: &[Flow],
    config: SearchConfig,
) -> (RoutedAllocation, SearchStats) {
    let (assignment, stats) = run_search(fabric, flows, &LexMaxMin, config);
    (finish(fabric, flows, &assignment), stats)
}

/// Computes a lex-max-min fair allocation (Definition 2.4); convenience
/// wrapper over [`search_lex_max_min`].
///
/// # Panics
///
/// See [`search_lex_max_min`].
///
/// # Examples
///
/// For Example 2.3's flows in `C_2`, the lex-max-min sorted vector is
/// `[1/3, 1/3, 1/3, 2/3, 2/3, 2/3]` — strictly below the macro-switch's
/// `[1/3, 1/3, 1/3, 2/3, 2/3, 1]`:
///
/// ```
/// use clos_core::constructions::example_2_3;
/// use clos_core::objectives::lex_max_min;
/// use clos_rational::Rational;
///
/// let ex = example_2_3();
/// let best = lex_max_min(&ex.instance.clos, &ex.instance.flows);
/// let r = |n, d| Rational::new(n, d);
/// assert_eq!(
///     best.allocation.sorted().rates(),
///     &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), r(2, 3)]
/// );
/// ```
#[must_use]
pub fn lex_max_min<F: Fabric + Sync>(fabric: &F, flows: &[Flow]) -> RoutedAllocation {
    search_lex_max_min(fabric, flows).0
}

/// Computes a throughput-max-min fair allocation `a^T-MmF`
/// (Definition 2.5) by exhaustive search.
///
/// On key ties, the first canonical assignment in lexicographic order
/// wins, independent of the thread count.
///
/// # Panics
///
/// See [`search_lex_max_min`].
#[must_use]
pub fn search_throughput_max_min<F: Fabric + Sync>(
    fabric: &F,
    flows: &[Flow],
) -> (RoutedAllocation, SearchStats) {
    search_throughput_max_min_with(fabric, flows, SearchConfig::default())
}

/// [`search_throughput_max_min`] with explicit engine configuration.
/// Results are identical for every configuration; only statistics and
/// wall time differ.
///
/// # Panics
///
/// See [`search_lex_max_min`].
#[must_use]
pub fn search_throughput_max_min_with<F: Fabric + Sync>(
    fabric: &F,
    flows: &[Flow],
    config: SearchConfig,
) -> (RoutedAllocation, SearchStats) {
    let (assignment, stats) = run_search(fabric, flows, &ThroughputMaxMin, config);
    (finish(fabric, flows, &assignment), stats)
}

/// Computes a throughput-max-min fair allocation (Definition 2.5);
/// convenience wrapper over [`search_throughput_max_min`].
///
/// # Panics
///
/// See [`search_lex_max_min`].
#[must_use]
pub fn throughput_max_min<F: Fabric + Sync>(fabric: &F, flows: &[Flow]) -> RoutedAllocation {
    search_throughput_max_min(fabric, flows).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use clos_fairness::verify_bottleneck_property;
    use clos_net::ClosNetwork;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn example_2_3_flows(clos: &ClosNetwork) -> Vec<Flow> {
        vec![
            Flow::new(clos.source(0, 1), clos.destination(0, 1)),
            Flow::new(clos.source(0, 1), clos.destination(1, 0)),
            Flow::new(clos.source(0, 1), clos.destination(1, 1)),
            Flow::new(clos.source(1, 0), clos.destination(1, 0)),
            Flow::new(clos.source(1, 1), clos.destination(1, 1)),
            Flow::new(clos.source(0, 0), clos.destination(0, 0)),
        ]
    }

    #[test]
    fn canonical_enumeration_counts() {
        let clos = ClosNetwork::standard(2);
        // Three distinct flows, first-use canonicalization: assignments are
        // 0xx with x in {0,1} once a second label is introduced:
        // 000, 001, 010, 011 -> 4 instead of 8.
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
            Flow::new(clos.source(1, 0), clos.destination(3, 0)),
        ];
        let mut count = 0;
        for_each_canonical_assignment(&clos, &flows, |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn identical_flows_enumerate_canonical_multisets() {
        let clos = ClosNetwork::standard(3);
        // Three identical flows over 3 middles. Group-sortedness alone
        // would leave the 10 multisets of size 3; combining it with
        // first-use label canonicalization cuts the enumeration to 4:
        // 000, 001, 011, 012 (e.g. 002 ~ 001 and 112 ~ 001 under middle
        // relabeling). The set is a superset of the 3 true orbits — 011
        // shares an orbit with 001 but satisfies both constraints, so it
        // stays. Soundness (every orbit's lex-min survives) is checked
        // against unreduced brute force by the orbit-coverage proptest in
        // tests/symmetry_soundness.rs.
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(3, 0)); 3];
        let mut seen = Vec::new();
        let mut sorted_ok = true;
        for_each_canonical_assignment(&clos, &flows, |a| {
            seen.push(a.to_vec());
            sorted_ok &= a.windows(2).all(|w| w[0] <= w[1]);
        });
        assert_eq!(
            seen,
            vec![vec![0, 0, 0], vec![0, 0, 1], vec![0, 1, 1], vec![0, 1, 2]]
        );
        assert!(sorted_ok);
    }

    #[test]
    fn mixed_groups_combine_both_reductions() {
        let clos = ClosNetwork::standard(3);
        // Two identical flows plus one distinct flow. With the old
        // either/or reduction the duplicate pair disabled first-use
        // canonicalization entirely (6 * 3 = 18 assignments); combined,
        // only 5 survive: 000, 001, 010, 011, 012.
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(3, 0)),
            Flow::new(clos.source(0, 0), clos.destination(3, 0)),
            Flow::new(clos.source(1, 0), clos.destination(4, 0)),
        ];
        let mut seen = Vec::new();
        for_each_canonical_assignment(&clos, &flows, |a| seen.push(a.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![0, 0, 0],
                vec![0, 0, 1],
                vec![0, 1, 0],
                vec![0, 1, 1],
                vec![0, 1, 2],
            ]
        );
    }

    #[test]
    fn empty_collection_has_one_routing() {
        let clos = ClosNetwork::standard(2);
        let mut count = 0;
        for_each_canonical_assignment(&clos, &[], |a| {
            assert!(a.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn lex_max_min_on_example_2_3() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let (best, stats) = search_lex_max_min(&clos, &flows);
        assert!(stats.routings_examined >= 1);
        assert_eq!(
            best.allocation.sorted().rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), r(2, 3)]
        );
        // The optimum is itself max-min fair for its routing.
        assert!(verify_bottleneck_property(
            clos.network(),
            &flows,
            &best.routing,
            &best.allocation,
            Rational::ZERO
        )
        .is_ok());
    }

    #[test]
    fn throughput_max_min_on_example_2_3() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let best = throughput_max_min(&clos, &flows);
        // Both routings of Example 2.3 total 3 (so does the macro-switch
        // allocation); no routing beats it here. The type-1 source link
        // caps its three flows at 1 in aggregate, and each type-2/type-3
        // flow at 1.
        assert_eq!(best.throughput(), Rational::from_integer(3));
    }

    #[test]
    fn single_flow_gets_rate_one() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(2, 1))];
        let best = lex_max_min(&clos, &flows);
        assert_eq!(best.allocation.rates(), &[Rational::ONE]);
        let best = throughput_max_min(&clos, &flows);
        assert_eq!(best.allocation.rates(), &[Rational::ONE]);
    }

    #[test]
    fn two_flows_same_tor_pair_split_across_middles() {
        let clos = ClosNetwork::standard(2);
        // Two flows from distinct sources under ToR 0 to distinct
        // destinations under ToR 2: on one middle they'd share the uplink
        // (1/2 each); lex-max-min spreads them (1 each).
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
        ];
        let best = lex_max_min(&clos, &flows);
        assert_eq!(best.allocation.rates(), &[Rational::ONE, Rational::ONE]);
        let m0 = clos.middle_of_path(best.routing.path(clos_net::FlowId::new(0)));
        let m1 = clos.middle_of_path(best.routing.path(clos_net::FlowId::new(1)));
        assert_ne!(m0, m1);
    }

    #[test]
    fn lex_optimum_dominates_every_examined_routing() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let best = lex_max_min(&clos, &flows);
        let best_sorted = best.allocation.sorted();
        for_each_canonical_assignment(&clos, &flows, |assignment| {
            let routing = routing_from_assignment(&clos, &flows, assignment);
            let a = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
            assert!(best_sorted >= a.sorted());
        });
    }

    #[test]
    fn throughput_optimum_dominates_every_examined_routing() {
        let clos = ClosNetwork::standard(2);
        let flows = example_2_3_flows(&clos);
        let best = throughput_max_min(&clos, &flows);
        for_each_canonical_assignment(&clos, &flows, |assignment| {
            let routing = routing_from_assignment(&clos, &flows, assignment);
            let a = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
            assert!(best.throughput() >= a.throughput());
        });
    }

    /// S3 regression: on key ties the first canonical assignment wins,
    /// for any thread count. Two identical flows to the same destination
    /// tie across both canonical routings (the second flow's rate is the
    /// same shared either way only when capacities force it); use a
    /// symmetric instance where several routings attain the optimum.
    #[test]
    fn ties_resolve_to_first_canonical_assignment() {
        let clos = ClosNetwork::standard(2);
        // One flow: both middles give rate 1 -> tie; middle 0 must win.
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(2, 0))];
        for threads in [1usize, 2, 4, 8] {
            let config = SearchConfig {
                threads: Some(threads),
                no_prune: false,
                trace_sample: None,
            };
            let (best, _) = search_lex_max_min_with(&clos, &flows, config);
            let m = clos.middle_of_path(best.routing.path(clos_net::FlowId::new(0)));
            assert_eq!(m, Some(0), "threads={threads}");
        }
    }
}
