//! The paper's adversarial flow collections (Figures 1–4) as reusable,
//! checkable instances.
//!
//! Each constructor returns the topology pair (`C_n` and `MS_n`), the flow
//! collection on both, and the quantities the paper predicts for it —
//! macro-switch rates, optimal throughputs, and (for Theorem 4.3) the
//! certificate routing from Lemma 4.6 whose max-min allocation is
//! lex-max-min fair. Tests and benchmarks measure against these
//! predictions.
//!
//! Indices follow the crate's 0-based convention; the paper is 1-based
//! (`s_1^2` in the paper is `source(0, 1)` here).

use clos_fairness::{max_min_fair, Allocation};
use clos_net::{expect_server_coords, ClosNetwork, Flow, FlowId, MacroSwitch, NodeKind, Routing};
use clos_rational::Rational;

use crate::RoutedAllocation;

/// A flow collection instantiated on both `C_n` and `MS_n`.
///
/// Node identifiers differ between the two topologies, so the collection is
/// materialized twice; position `i` of [`Instance::flows`] and
/// [`Instance::ms_flows`] denote the same logical flow.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The Clos network `C_n`.
    pub clos: ClosNetwork,
    /// The macro-switch abstraction `MS_n`.
    pub ms: MacroSwitch,
    /// The flows on `clos` node identifiers.
    pub flows: Vec<Flow>,
    /// The same flows on `ms` node identifiers.
    pub ms_flows: Vec<Flow>,
}

impl Instance {
    fn from_coords(n: usize, coords: &[(usize, usize, usize, usize)]) -> Instance {
        let clos = ClosNetwork::standard(n);
        let ms = MacroSwitch::standard(n);
        let flows = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect();
        let ms_flows = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(ms.source(si, sj), ms.destination(ti, tj)))
            .collect();
        Instance {
            clos,
            ms,
            flows,
            ms_flows,
        }
    }

    /// Computes the (unique) max-min fair allocation in the macro-switch.
    #[must_use]
    pub fn macro_allocation(&self) -> Allocation<Rational> {
        crate::macro_switch::macro_max_min(&self.ms, &self.ms_flows)
    }

    /// Computes the max-min fair allocation in the Clos network for a
    /// middle-switch assignment (one middle index per flow).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length or any middle index is out of range.
    #[must_use]
    pub fn clos_allocation(&self, assignment: &[usize]) -> RoutedAllocation {
        assert_eq!(assignment.len(), self.flows.len(), "assignment length");
        let routing: Routing = self
            .flows
            .iter()
            .zip(assignment)
            .map(|(&f, &m)| self.clos.path_via(f, m))
            .collect();
        let allocation = max_min_fair::<Rational>(self.clos.network(), &self.flows, &routing)
            .expect("Clos links are finite");
        RoutedAllocation {
            routing,
            allocation,
        }
    }
}

/// The running example of §2.2 (Figure 1): six flows in `C_2` whose max-min
/// fair allocation depends on the routing.
#[derive(Clone, Debug)]
pub struct Example23 {
    /// Topologies and flows. Flow order: the three type-1 (orange) flows
    /// `(s_1^2, t_1^2)`, `(s_1^2, t_2^1)`, `(s_1^2, t_2^2)`; the two type-2
    /// (blue) flows `(s_2^1, t_2^1)`, `(s_2^2, t_2^2)`; the type-3 (green)
    /// flow `(s_1^1, t_1^1)`.
    pub instance: Instance,
}

impl Example23 {
    /// Flows on the Clos network.
    #[must_use]
    pub fn flows(&self) -> &[Flow] {
        &self.instance.flows
    }

    /// The first routing discussed in the example: the type-1 flow
    /// `(s_1^2, t_2^1)` goes via `M_1` (paper numbering), and the type-3
    /// flow shares its uplink. Sorted rates `[1/3 ×3, 2/3 ×3]`.
    #[must_use]
    pub fn routing_1(&self) -> RoutedAllocation {
        self.instance.clos_allocation(&[1, 0, 1, 1, 0, 0])
    }

    /// The second routing: `(s_1^2, t_2^1)` re-assigned to `M_2`, pushing
    /// the type-2 flow `(s_2^2, t_2^2)` down to `1/3` while the type-3
    /// flow recovers rate 1. Sorted rates `[1/3 ×4, 2/3, 1]`.
    #[must_use]
    pub fn routing_2(&self) -> RoutedAllocation {
        self.instance.clos_allocation(&[1, 1, 1, 0, 1, 0])
    }
}

/// Builds the flow collection of Example 2.3 / Figure 1 on `C_2`.
///
/// # Examples
///
/// ```
/// use clos_core::constructions::example_2_3;
/// use clos_rational::Rational;
///
/// let ex = example_2_3();
/// let ms = ex.instance.macro_allocation();
/// assert_eq!(ms.sorted().rates().last(), Some(&Rational::ONE));
/// assert!(ex.routing_1().allocation.sorted() > ex.routing_2().allocation.sorted());
/// ```
#[must_use]
pub fn example_2_3() -> Example23 {
    let coords = [
        (0, 1, 0, 1), // type 1: s_1^2 -> t_1^2
        (0, 1, 1, 0), // type 1: s_1^2 -> t_2^1
        (0, 1, 1, 1), // type 1: s_1^2 -> t_2^2
        (1, 0, 1, 0), // type 2: s_2^1 -> t_2^1
        (1, 1, 1, 1), // type 2: s_2^2 -> t_2^2
        (0, 0, 0, 0), // type 3: s_1^1 -> t_1^1
    ];
    Example23 {
        instance: Instance::from_coords(2, &coords),
    }
}

/// The adversarial macro-switch collection of Theorem 3.4 (Figure 2,
/// generalized from Example 3.3): two type-1 flows on disjoint pairs plus
/// `k` parasitic type-2 flows crossing them.
#[derive(Clone, Debug)]
pub struct Theorem34 {
    /// The macro-switch `MS_n` the flows live in.
    pub ms: MacroSwitch,
    /// All flows: positions 0 and 1 are type 1, the remaining `k` type 2.
    pub flows: Vec<Flow>,
    /// The parasitic multiplicity `k ≥ 1`.
    pub k: usize,
}

impl Theorem34 {
    /// The two type-1 flows.
    #[must_use]
    pub fn type1(&self) -> [FlowId; 2] {
        [FlowId::new(0), FlowId::new(1)]
    }

    /// The `k` type-2 flows.
    #[must_use]
    pub fn type2(&self) -> Vec<FlowId> {
        (2..self.flows.len()).map(FlowId::from).collect()
    }

    /// `T^MT = 2`: both type-1 flows accepted at rate 1.
    #[must_use]
    pub fn expected_max_throughput(&self) -> Rational {
        Rational::TWO
    }

    /// `T^MmF = 1 + 1/(k+1)`: under max-min fairness every flow gets
    /// `1/(k+1)`.
    #[must_use]
    pub fn expected_max_min_throughput(&self) -> Rational {
        Rational::ONE + Rational::new(1, (self.k + 1) as i128)
    }
}

/// Builds the Theorem 3.4 adversarial collection in `MS_n` with `k` type-2
/// flows.
///
/// As `k → ∞` the max-min fair throughput approaches `½ T^MT`, showing the
/// factor-½ price of fairness is tight.
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
///
/// # Examples
///
/// ```
/// use clos_core::constructions::theorem_3_4;
/// use clos_core::macro_switch::price_of_fairness;
/// use clos_rational::Rational;
///
/// let t = theorem_3_4(1, 9);
/// let pof = price_of_fairness(&t.ms, &t.flows);
/// assert_eq!(pof.t_max_throughput, Rational::TWO);
/// assert_eq!(pof.t_max_min, Rational::new(11, 10)); // 1 + 1/10
/// ```
#[must_use]
pub fn theorem_3_4(n: usize, k: usize) -> Theorem34 {
    assert!(k >= 1, "need at least one type-2 flow");
    let ms = MacroSwitch::standard(n);
    let mut flows = vec![
        Flow::new(ms.source(0, 0), ms.destination(0, 0)),
        Flow::new(ms.source(1, 0), ms.destination(1, 0)),
    ];
    for _ in 0..k {
        flows.push(Flow::new(ms.source(1, 0), ms.destination(0, 0)));
    }
    Theorem34 { ms, flows, k }
}

/// Flow-type labels of the Theorem 4.2 / 4.3 construction (Figure 3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowType {
    /// `(s_i^j, t_i^j)` for `i ∈ [n]`, `j ∈ [2, n]` (orange).
    Type1,
    /// `(s_i^1, t_i^1)` for `i ∈ [n]` (blue).
    Type2a,
    /// `(s_i^1, t_{n+1}^j)` for `i ∈ [n]`, `j ∈ [n−1]` (blue).
    Type2b,
    /// `(s_{n+1}^n, t_{n+1}^n)` (green).
    Type3,
}

/// The adversarial collection of Theorems 4.2 and 4.3 (Figure 3) on `C_n`.
///
/// With `copies = 1` this is Theorem 4.2's collection (macro-switch rates
/// cannot be replicated at all); with `copies = n + 1` it is Theorem 4.3's
/// (the lex-max-min fair allocation starves the type-3 flow by a factor of
/// `1/n`).
#[derive(Clone, Debug)]
pub struct Theorem43 {
    /// Topologies and flows.
    pub instance: Instance,
    /// The network size `n ≥ 3`.
    pub n: usize,
    /// Number of parallel copies of each type-1 flow.
    pub copies: usize,
    types: Vec<FlowType>,
}

impl Theorem43 {
    /// Returns the type of each flow, in flow order.
    #[must_use]
    pub fn types(&self) -> &[FlowType] {
        &self.types
    }

    /// Returns the flows of a given type.
    #[must_use]
    pub fn flows_of_type(&self, ty: FlowType) -> Vec<FlowId> {
        self.types
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t == ty)
            .map(|(i, _)| FlowId::from(i))
            .collect()
    }

    /// The unique type-3 flow `(s_{n+1}^n, t_{n+1}^n)`.
    ///
    /// # Panics
    ///
    /// Never panics; the construction always contains exactly one.
    #[must_use]
    pub fn type3_flow(&self) -> FlowId {
        self.flows_of_type(FlowType::Type3)[0]
    }

    /// The macro-switch rate each flow type receives (Lemma 4.4, which for
    /// `copies = 1` specializes to Example 4.1's rates).
    #[must_use]
    pub fn expected_macro_rate(&self, ty: FlowType) -> Rational {
        match ty {
            FlowType::Type1 => Rational::new(1, self.copies as i128),
            FlowType::Type2a | FlowType::Type2b => Rational::new(1, self.n as i128),
            FlowType::Type3 => Rational::ONE,
        }
    }

    /// The lex-max-min fair rate of each flow type in `C_n` (Lemma 4.6,
    /// for the Theorem 4.3 parameterization `copies = n + 1`).
    #[must_use]
    pub fn expected_lex_rate(&self, ty: FlowType) -> Rational {
        match ty {
            FlowType::Type1 => Rational::new(1, self.copies as i128),
            FlowType::Type2a | FlowType::Type2b | FlowType::Type3 => {
                Rational::new(1, self.n as i128)
            }
        }
    }

    /// The certificate routing of Lemma 4.6 (Step 1), whose max-min fair
    /// allocation the paper proves lex-max-min fair:
    ///
    /// * type-1 flows `(s_i^j, t_i^j)` go via `M_{((i−1)+(j−1)) mod n}`
    ///   (0-based; the paper's `M_{k+1}`, `k = i + j − 2 (mod n)`);
    /// * type-2 flows leaving `I_i` all go via `M_i`;
    /// * the type-3 flow goes via `M_n` (0-based `n − 1`).
    #[must_use]
    pub fn certificate_routing(&self) -> Routing {
        let clos = &self.instance.clos;
        self.instance
            .flows
            .iter()
            .zip(&self.types)
            .map(|(&f, &ty)| {
                let m = match ty {
                    FlowType::Type1 => {
                        let (i, j) = expect_server_coords(
                            f.src(),
                            NodeKind::Source,
                            clos.source_coords(f.src()),
                        );
                        (i + j) % self.n
                    }
                    FlowType::Type2a | FlowType::Type2b => clos.src_tor(f),
                    FlowType::Type3 => self.n - 1,
                };
                clos.path_via(f, m)
            })
            .collect()
    }

    /// The certificate routing with its max-min fair allocation — by
    /// Lemma 4.6, a lex-max-min fair allocation of the instance.
    #[must_use]
    pub fn certificate(&self) -> RoutedAllocation {
        let routing = self.certificate_routing();
        let allocation =
            max_min_fair::<Rational>(self.instance.clos.network(), &self.instance.flows, &routing)
                .expect("Clos links are finite");
        RoutedAllocation {
            routing,
            allocation,
        }
    }
}

/// Builds the Theorem 4.2 collection on `C_n` (one copy of each type-1
/// flow): the macro-switch max-min rates admit **no** feasible routing.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn theorem_4_2(n: usize) -> Theorem43 {
    theorem_4_3_with_copies(n, 1)
}

/// A machine-checked certificate that the macro-switch rates of the
/// Figure 3 collection admit no feasible routing in `C_n`
/// (Theorem 4.2 / Claim 4.5), verified by exact arithmetic for the
/// instance's actual `n` rather than by exhaustive search.
///
/// The certificate records the three facts whose conjunction forbids a
/// routing; each is *checked*, not assumed, by
/// [`Theorem43::certify_infeasibility`]:
///
/// 1. **Integrality (Claim 4.5):** every uplink of an input ToR in `[n]`
///    must be exactly full, and the only integer mixes of type-1/type-2
///    flows achieving that are "all type-2 together" or "type-1 only" —
///    so each ToR sends all its type-2 flows through one middle switch.
/// 2. **Pigeonhole:** two ToRs sharing that middle switch would overload
///    the downlink to `O_{n+1}`, so the type-2 bundles occupy all `n`
///    middle switches, one each.
/// 3. **Starvation:** every downlink into `O_{n+1}` then has residual
///    exactly `1/n`, strictly less than the type-3 flow's rate of 1.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InfeasibilityCertificate {
    /// The network size the certificate applies to.
    pub n: usize,
    /// The admissible per-uplink (type-1 count, type-2 count) mixes found
    /// by the integrality check — exactly two for a valid certificate.
    pub uplink_mixes: Vec<(usize, usize)>,
    /// Load placed on a `M_m → O_{n+1}` downlink by one ToR's type-2
    /// bundle (`(n−1)/n`).
    pub bundle_load: Rational,
    /// Residual capacity left for the type-3 flow on every such downlink
    /// (`1/n`), strictly below its required rate 1.
    pub type3_residual: Rational,
}

impl Theorem43 {
    /// Certifies that this instance's macro-switch rates cannot be routed
    /// in `C_n`, by checking the Theorem 4.2 / Claim 4.5 argument with
    /// exact arithmetic (no search).
    ///
    /// Applies to any `copies` parameterization whose type-1 rate is
    /// `1/copies`: the paper's Theorem 4.2 is `copies = 1` and the rate
    /// pattern of Theorem 4.3 (`copies = n + 1`) satisfies the same
    /// argument.
    ///
    /// # Errors
    ///
    /// Returns a description of the first failed check — which would mean
    /// the argument does not apply to this instance (it always does for
    /// the constructions produced by this module).
    pub fn certify_infeasibility(&self) -> Result<InfeasibilityCertificate, String> {
        let n = self.n;
        let r1 = self.expected_macro_rate(FlowType::Type1); // 1/copies
        let r2 = self.expected_macro_rate(FlowType::Type2a); // 1/n
        let c1 = (n - 1) * self.copies; // type-1 flows per input ToR in [n]
        let c2 = n; // type-2 flows per input ToR in [n]

        // Check 0: the per-ToR totals saturate all n uplinks exactly.
        let total =
            r1 * Rational::from_integer(c1 as i128) + r2 * Rational::from_integer(c2 as i128);
        if total != Rational::from_integer(n as i128) {
            return Err(format!(
                "per-ToR offered load {total} does not saturate the {n} uplinks"
            ));
        }

        // Check 1 (Claim 4.5): enumerate integer mixes (x type-1, y
        // type-2) with x·r1 + y·r2 = 1. A valid certificate needs every
        // solution to have y = 0 or y = n (type-2 flows are inseparable).
        let mut mixes = Vec::new();
        for x in 0..=c1.min(n * self.copies) {
            for y in 0..=c2 {
                let load =
                    r1 * Rational::from_integer(x as i128) + r2 * Rational::from_integer(y as i128);
                if load == Rational::ONE {
                    mixes.push((x, y));
                }
            }
        }
        if !mixes.iter().all(|&(_, y)| y == 0 || y == c2) {
            return Err(format!(
                "uplink mixes {mixes:?} allow splitting a type-2 bundle"
            ));
        }
        if !mixes.iter().any(|&(_, y)| y == c2) {
            return Err("no admissible uplink carries the type-2 bundle".to_string());
        }

        // Check 2 (pigeonhole): two bundles on one middle overload the
        // downlink to O_{n+1}: each bundle puts (n−1) type-2b flows of
        // rate 1/n on it.
        let bundle_load = r2 * Rational::from_integer((n - 1) as i128);
        if bundle_load * Rational::TWO <= Rational::ONE {
            return Err("two type-2 bundles would fit one downlink".to_string());
        }

        // Check 3: with the forced bijection, the residual on every
        // downlink into O_{n+1} is below the type-3 rate.
        let residual = Rational::ONE - bundle_load;
        let type3 = self.expected_macro_rate(FlowType::Type3);
        if residual >= type3 {
            return Err(format!(
                "type-3 flow (rate {type3}) fits the residual {residual}"
            ));
        }

        Ok(InfeasibilityCertificate {
            n,
            uplink_mixes: mixes,
            bundle_load,
            type3_residual: residual,
        })
    }
}

/// Builds the Theorem 4.3 collection on `C_n` (`n + 1` copies of each
/// type-1 flow): the lex-max-min fair allocation starves the type-3 flow
/// to `1/n` of its macro-switch rate.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Examples
///
/// ```
/// use clos_core::constructions::theorem_4_3;
/// use clos_rational::Rational;
///
/// let t = theorem_4_3(3);
/// let lex = t.certificate();
/// // Macro-switch rate 1, lex-max-min rate 1/n.
/// assert_eq!(lex.allocation.rate(t.type3_flow()), Rational::new(1, 3));
/// ```
#[must_use]
pub fn theorem_4_3(n: usize) -> Theorem43 {
    theorem_4_3_with_copies(n, n + 1)
}

/// Builds the Figure 3 collection with an explicit number of copies of
/// each type-1 flow (1 for Theorem 4.2, `n + 1` for Theorem 4.3).
///
/// # Panics
///
/// Panics if `n < 3` or `copies == 0`.
#[must_use]
pub fn theorem_4_3_with_copies(n: usize, copies: usize) -> Theorem43 {
    assert!(n >= 3, "the construction requires n >= 3");
    assert!(copies >= 1, "need at least one copy of each type-1 flow");
    let mut coords = Vec::new();
    let mut types = Vec::new();
    // Type 1: copies × (s_i^j, t_i^j), i ∈ [n], j ∈ [2, n] (0-based hosts 1..n).
    for i in 0..n {
        for j in 1..n {
            for _ in 0..copies {
                coords.push((i, j, i, j));
                types.push(FlowType::Type1);
            }
        }
    }
    // Type 2.a: (s_i^1, t_i^1), i ∈ [n].
    for i in 0..n {
        coords.push((i, 0, i, 0));
        types.push(FlowType::Type2a);
    }
    // Type 2.b: (s_i^1, t_{n+1}^j), i ∈ [n], j ∈ [n−1] (ToR n, hosts 0..n−1).
    for i in 0..n {
        for j in 0..n - 1 {
            coords.push((i, 0, n, j));
            types.push(FlowType::Type2b);
        }
    }
    // Type 3: (s_{n+1}^n, t_{n+1}^n).
    coords.push((n, n - 1, n, n - 1));
    types.push(FlowType::Type3);

    Theorem43 {
        instance: Instance::from_coords(n, &coords),
        n,
        copies,
        types,
    }
}

/// The adversarial collection of Theorem 5.4 (Figure 4, generalizing
/// Example 5.3) on `C_n`: `(n−1)/2` stacked copies of the Figure 2 gadget,
/// each with `k` parasitic type-2 flows, all under a single ToR pair.
#[derive(Clone, Debug)]
pub struct Theorem54 {
    /// Topologies and flows.
    pub instance: Instance,
    /// The (odd) network size `n ≥ 3`.
    pub n: usize,
    /// Parasitic multiplicity per gadget.
    pub k: usize,
    types1: Vec<FlowId>,
    types2: Vec<FlowId>,
}

impl Theorem54 {
    /// The `n − 1` type-1 flows.
    #[must_use]
    pub fn type1(&self) -> &[FlowId] {
        &self.types1
    }

    /// The `(n−1)/2 · k` type-2 flows.
    #[must_use]
    pub fn type2(&self) -> &[FlowId] {
        &self.types2
    }

    /// `T^MmF` in the macro-switch: every flow gets `1/(k+1)`, so
    /// `T^MmF = (n−1)/2 · (1 + 1/(k+1))`.
    #[must_use]
    pub fn expected_macro_throughput(&self) -> Rational {
        Rational::new((self.n - 1) as i128, 2)
            * (Rational::ONE + Rational::new(1, (self.k + 1) as i128))
    }

    /// The paper's lower bound `T^T-MmF ≥ n − 2`, achieved by the
    /// Doom-Switch routing.
    #[must_use]
    pub fn expected_doom_throughput_lower(&self) -> Rational {
        Rational::from_integer((self.n - 2) as i128)
    }
}

/// Builds the Theorem 5.4 collection on `C_n` for odd `n ≥ 3`.
///
/// Gadget `g` (for `g ∈ [0, (n−1)/2)`) occupies hosts `2g` and `2g + 1` of
/// ToR pair 0: type-1 flows `(s_0^{2g}, t_0^{2g})` and
/// `(s_0^{2g+1}, t_0^{2g+1})`, plus `k` type-2 flows
/// `(s_0^{2g+1}, t_0^{2g})`.
///
/// # Panics
///
/// Panics if `n < 3`, `n` is even, or `k == 0`.
///
/// # Examples
///
/// ```
/// use clos_core::constructions::theorem_5_4;
/// use clos_rational::Rational;
///
/// let t = theorem_5_4(7, 1); // Example 5.3
/// assert_eq!(t.expected_macro_throughput(), Rational::new(9, 2));
/// assert_eq!(t.expected_doom_throughput_lower(), Rational::from_integer(5));
/// ```
#[must_use]
pub fn theorem_5_4(n: usize, k: usize) -> Theorem54 {
    assert!(n >= 3, "the construction requires n >= 3");
    assert!(n % 2 == 1, "the construction requires odd n");
    assert!(k >= 1, "need at least one type-2 flow per gadget");
    let mut coords = Vec::new();
    let mut types1 = Vec::new();
    let mut types2 = Vec::new();
    for g in 0..(n - 1) / 2 {
        let lo = 2 * g;
        let hi = 2 * g + 1;
        types1.push(FlowId::from(coords.len()));
        coords.push((0, lo, 0, lo));
        types1.push(FlowId::from(coords.len()));
        coords.push((0, hi, 0, hi));
        for _ in 0..k {
            types2.push(FlowId::from(coords.len()));
            coords.push((0, hi, 0, lo));
        }
    }
    Theorem54 {
        instance: Instance::from_coords(n, &coords),
        n,
        k,
        types1,
        types2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn example_2_3_reproduces_figure_1() {
        let ex = example_2_3();
        let ms = ex.instance.macro_allocation();
        assert_eq!(
            ms.sorted().rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), Rational::ONE]
        );
        let r1 = ex.routing_1();
        assert_eq!(
            r1.allocation.sorted().rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), r(2, 3)]
        );
        let r2 = ex.routing_2();
        assert_eq!(
            r2.allocation.sorted().rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(1, 3), r(2, 3), Rational::ONE]
        );
        assert!(ms.sorted() > r1.allocation.sorted());
        assert!(r1.allocation.sorted() > r2.allocation.sorted());
    }

    #[test]
    fn theorem_3_4_rates_and_throughputs() {
        for k in [1, 2, 5, 32] {
            let t = theorem_3_4(1, k);
            let a = crate::macro_switch::macro_max_min(&t.ms, &t.flows);
            // Every flow gets 1/(k+1).
            assert!(a.rates().iter().all(|&x| x == r(1, (k + 1) as i128)));
            assert_eq!(a.throughput(), t.expected_max_min_throughput());
            let mt = crate::macro_switch::max_throughput(&t.ms, &t.flows);
            assert_eq!(mt.throughput(), t.expected_max_throughput());
        }
    }

    #[test]
    fn theorem_3_4_embeds_in_larger_macro_switches() {
        let t = theorem_3_4(4, 3);
        let a = crate::macro_switch::macro_max_min(&t.ms, &t.flows);
        assert!(a.rates().iter().all(|&x| x == r(1, 4)));
        assert_eq!(
            crate::macro_switch::max_throughput(&t.ms, &t.flows).throughput(),
            Rational::TWO
        );
    }

    #[test]
    fn theorem_4_2_macro_rates_match_example_4_1() {
        let t = theorem_4_2(3);
        let a = t.instance.macro_allocation();
        for (i, ty) in t.types().iter().enumerate() {
            assert_eq!(
                a.rate(FlowId::from(i)),
                t.expected_macro_rate(*ty),
                "flow {i} of type {ty:?}"
            );
        }
        // Counts: n(n−1) type 1, n type 2a, n(n−1) type 2b, 1 type 3.
        assert_eq!(t.flows_of_type(FlowType::Type1).len(), 6);
        assert_eq!(t.flows_of_type(FlowType::Type2a).len(), 3);
        assert_eq!(t.flows_of_type(FlowType::Type2b).len(), 6);
        assert_eq!(t.flows_of_type(FlowType::Type3).len(), 1);
    }

    #[test]
    fn theorem_4_3_macro_rates_match_lemma_4_4() {
        for n in [3, 4, 5] {
            let t = theorem_4_3(n);
            let a = t.instance.macro_allocation();
            for (i, ty) in t.types().iter().enumerate() {
                assert_eq!(a.rate(FlowId::from(i)), t.expected_macro_rate(*ty));
            }
            assert_eq!(a.rate(t.type3_flow()), Rational::ONE);
        }
    }

    #[test]
    fn theorem_4_3_certificate_matches_lemma_4_6() {
        for n in [3, 4, 5, 8] {
            let t = theorem_4_3(n);
            let cert = t.certificate();
            assert!(cert
                .routing
                .validate(t.instance.clos.network(), &t.instance.flows)
                .is_ok());
            for (i, ty) in t.types().iter().enumerate() {
                assert_eq!(
                    cert.allocation.rate(FlowId::from(i)),
                    t.expected_lex_rate(*ty),
                    "n={n}, flow {i} of type {ty:?}"
                );
            }
            // The headline: type-3 drops from 1 to 1/n.
            assert_eq!(cert.allocation.rate(t.type3_flow()), r(1, n as i128));
        }
    }

    #[test]
    fn theorem_4_3_certificate_is_max_min_fair() {
        let t = theorem_4_3(3);
        let cert = t.certificate();
        assert!(clos_fairness::verify_bottleneck_property(
            t.instance.clos.network(),
            &t.instance.flows,
            &cert.routing,
            &cert.allocation,
            Rational::ZERO
        )
        .is_ok());
    }

    #[test]
    fn theorem_5_4_macro_throughput() {
        for (n, k) in [(3, 1), (5, 2), (7, 1), (9, 4)] {
            let t = theorem_5_4(n, k);
            let a = t.instance.macro_allocation();
            assert!(a.rates().iter().all(|&x| x == r(1, (k + 1) as i128)));
            assert_eq!(a.throughput(), t.expected_macro_throughput());
            assert_eq!(t.type1().len(), n - 1);
            assert_eq!(t.type2().len(), (n - 1) / 2 * k);
        }
    }

    #[test]
    #[should_panic(expected = "requires odd n")]
    fn theorem_5_4_rejects_even_n() {
        let _ = theorem_5_4(4, 1);
    }

    #[test]
    #[should_panic(expected = "requires n >= 3")]
    fn theorem_4_3_rejects_small_n() {
        let _ = theorem_4_3(2);
    }

    #[test]
    fn infeasibility_certificate_checks_for_many_n() {
        for n in [3usize, 4, 5, 8, 16, 64] {
            // Theorem 4.2 parameterization.
            let cert = theorem_4_2(n).certify_infeasibility().expect("certifies");
            assert_eq!(cert.n, n);
            assert_eq!(cert.uplink_mixes, vec![(0, n), (1, 0)]);
            assert_eq!(cert.bundle_load, r((n - 1) as i128, n as i128));
            assert_eq!(cert.type3_residual, r(1, n as i128));
            // Theorem 4.3 parameterization (rates 1/(n+1) and 1/n).
            let cert = theorem_4_3(n).certify_infeasibility().expect("certifies");
            assert_eq!(cert.uplink_mixes, vec![(0, n), (n + 1, 0)]);
        }
    }

    #[test]
    fn certificate_agrees_with_exhaustive_search_at_n_3() {
        // The certificate and the backtracking search must agree.
        let t = theorem_4_2(3);
        assert!(t.certify_infeasibility().is_ok());
        let rates = t.instance.macro_allocation();
        assert!(crate::replication::find_feasible_routing(
            &t.instance.clos,
            &t.instance.flows,
            rates.rates()
        )
        .is_none());
    }

    #[test]
    fn instance_flow_translation_is_consistent() {
        let t = theorem_4_2(3);
        assert_eq!(t.instance.flows.len(), t.instance.ms_flows.len());
        for (cf, mf) in t.instance.flows.iter().zip(&t.instance.ms_flows) {
            assert_eq!(
                t.instance.clos.source_coords(cf.src()),
                t.instance.ms.source_coords(mf.src())
            );
            assert_eq!(
                t.instance.clos.destination_coords(cf.dst()),
                t.instance.ms.destination_coords(mf.dst())
            );
        }
    }
}
