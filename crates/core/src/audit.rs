//! One-stop diagnosis of a routing: allocation, bottleneck placement,
//! macro-switch comparison, and bound checks.
//!
//! [`audit_routing`] gathers everything the paper measures about a routing
//! into one report: the max-min fair allocation congestion control would
//! impose (with each flow's bottleneck link and whether it lies inside the
//! fabric — the §2.2 "bottleneck transfer"), the per-flow ratios against
//! the macro-switch reference, and the throughput against the universal
//! bounds (`T ≤ T^MT`, Theorem 3.4's `T^MT ≤ 2·T^MmF_MS`).

use std::fmt;

use clos_fairness::{max_min_fair_traced, Allocation, WaterfillTrace};
use clos_net::{ClosNetwork, Flow, FlowId, MacroSwitch, NodeKind, Routing};
use clos_rational::Rational;

use crate::macro_switch::{macro_max_min, max_throughput};

/// Where a flow's bottleneck link sits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BottleneckSite {
    /// A server↔ToR link ("outside the network") — the only possibility in
    /// a macro-switch.
    HostLink,
    /// A ToR↔middle fabric link ("inside the network") — the phenomenon
    /// unique to Clos routing (§2.2).
    FabricLink,
}

/// The complete diagnostic report for one routing of one flow collection.
#[derive(Clone, Debug)]
pub struct RoutingAudit {
    /// The max-min fair allocation for the routing.
    pub allocation: Allocation<Rational>,
    /// The water-filling trace (fill levels, per-flow bottleneck links).
    pub trace: WaterfillTrace<Rational>,
    /// Where each flow's bottleneck sits.
    pub bottleneck_sites: Vec<BottleneckSite>,
    /// The macro-switch max-min reference allocation.
    pub macro_allocation: Allocation<Rational>,
    /// Per-flow ratio of network rate to macro-switch rate.
    pub ratios: Vec<Rational>,
    /// `T^MT`, the maximum throughput across the macro-switch (Lemma 3.2).
    pub max_throughput: Rational,
}

impl RoutingAudit {
    /// Throughput of the audited routing's allocation.
    #[must_use]
    pub fn throughput(&self) -> Rational {
        self.allocation.throughput()
    }

    /// Throughput of the macro-switch max-min allocation.
    #[must_use]
    pub fn macro_throughput(&self) -> Rational {
        self.macro_allocation.throughput()
    }

    /// The worst per-flow ratio — how badly the most-degraded flow fares
    /// versus the macro-switch abstraction.
    ///
    /// # Panics
    ///
    /// Panics if the collection was empty.
    #[must_use]
    pub fn min_ratio(&self) -> Rational {
        self.ratios.iter().copied().min().expect("nonempty")
    }

    /// Flows whose bottleneck moved inside the fabric.
    #[must_use]
    pub fn fabric_bottlenecked(&self) -> Vec<FlowId> {
        self.bottleneck_sites
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == BottleneckSite::FabricLink)
            .map(|(i, _)| FlowId::from(i))
            .collect()
    }

    /// Checks the universal bounds that every routing must satisfy:
    /// `T ≤ T^MT` and (Theorem 3.4, rearranged) `T^MT ≤ 2·T^MmF_MS`, hence
    /// `T ≤ 2·T^MmF_MS`.
    #[must_use]
    pub fn bounds_hold(&self) -> bool {
        let t = self.throughput();
        t <= self.max_throughput && self.max_throughput <= Rational::TWO * self.macro_throughput()
    }
}

impl fmt::Display for RoutingAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "throughput {} (macro-switch {}, T^MT {})",
            self.throughput(),
            self.macro_throughput(),
            self.max_throughput
        )?;
        writeln!(
            f,
            "worst flow keeps {} of its macro-switch rate; {} of {} flows bottlenecked in-fabric",
            self.min_ratio(),
            self.fabric_bottlenecked().len(),
            self.allocation.len()
        )?;
        write!(f, "bounds hold: {}", self.bounds_hold())
    }
}

/// Audits a routing end to end; see the module docs.
///
/// # Panics
///
/// Panics if the routing does not match the flows, a flow endpoint is
/// invalid for `clos`/`ms`, or the collection is empty.
///
/// # Examples
///
/// ```
/// use clos_core::audit::audit_routing;
/// use clos_net::{ClosNetwork, Flow, MacroSwitch, Routing};
/// use clos_rational::Rational;
///
/// let clos = ClosNetwork::standard(2);
/// let ms = MacroSwitch::standard(2);
/// let flows = vec![
///     Flow::new(clos.source(0, 0), clos.destination(2, 0)),
///     Flow::new(clos.source(0, 1), clos.destination(2, 1)),
/// ];
/// // Force both flows through middle 0: they halve each other.
/// let routing: Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
/// let audit = audit_routing(&clos, &ms, &flows, &routing);
/// assert_eq!(audit.min_ratio(), Rational::new(1, 2));
/// assert_eq!(audit.fabric_bottlenecked().len(), 2);
/// assert!(audit.bounds_hold());
/// ```
#[must_use]
pub fn audit_routing(
    clos: &ClosNetwork,
    ms: &MacroSwitch,
    flows: &[Flow],
    routing: &Routing,
) -> RoutingAudit {
    assert!(!flows.is_empty(), "cannot audit an empty collection");
    let (allocation, trace) = max_min_fair_traced::<Rational>(clos.network(), flows, routing)
        .expect("Clos links are finite");

    let bottleneck_sites = trace
        .bottleneck_of
        .iter()
        .map(|&link| {
            let l = clos.network().link(link);
            let src_kind = clos.network().node(l.src()).kind();
            let dst_kind = clos.network().node(l.dst()).kind();
            if src_kind == NodeKind::Source || dst_kind == NodeKind::Destination {
                BottleneckSite::HostLink
            } else {
                BottleneckSite::FabricLink
            }
        })
        .collect();

    let ms_flows = ms.translate_flows(clos, flows);
    let macro_allocation = macro_max_min(ms, &ms_flows);
    let ratios = allocation
        .rates()
        .iter()
        .zip(macro_allocation.rates())
        .map(|(a, m)| *a / *m)
        .collect();
    let max_throughput = max_throughput(ms, &ms_flows).throughput();

    RoutingAudit {
        allocation,
        trace,
        bottleneck_sites,
        macro_allocation,
        ratios,
        max_throughput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constructions::{example_2_3, theorem_4_3};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn audits_example_2_3_routings() {
        let ex = example_2_3();
        let clos = &ex.instance.clos;
        let ms = &ex.instance.ms;
        let flows = &ex.instance.flows;

        let a1 = audit_routing(clos, ms, flows, &ex.routing_1().routing);
        // Routing 1: type-3 degraded to 2/3, bottlenecked in-fabric.
        assert_eq!(a1.min_ratio(), r(2, 3));
        assert_eq!(
            a1.bottleneck_sites[5],
            BottleneckSite::FabricLink,
            "type-3 flow moved its bottleneck inside"
        );
        assert!(a1.bounds_hold());

        let a2 = audit_routing(clos, ms, flows, &ex.routing_2().routing);
        // Routing 2: type-2 flow (index 4) degraded to 1/2 of macro rate.
        assert_eq!(a2.min_ratio(), r(1, 2));
        assert_eq!(a2.bottleneck_sites[5], BottleneckSite::HostLink);
        assert!(a2.bounds_hold());
    }

    #[test]
    fn macro_friendly_routing_has_no_fabric_bottlenecks() {
        let clos = ClosNetwork::standard(2);
        let ms = MacroSwitch::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
        ];
        let routing: Routing = flows
            .iter()
            .enumerate()
            .map(|(i, &f)| clos.path_via(f, i))
            .collect();
        let audit = audit_routing(&clos, &ms, &flows, &routing);
        assert!(audit.fabric_bottlenecked().is_empty());
        assert_eq!(audit.min_ratio(), Rational::ONE);
        assert_eq!(audit.throughput(), Rational::TWO);
    }

    #[test]
    fn audit_of_certificate_shows_starvation() {
        let t = theorem_4_3(3);
        let cert = t.certificate();
        let audit = audit_routing(
            &t.instance.clos,
            &t.instance.ms,
            &t.instance.flows,
            &cert.routing,
        );
        assert_eq!(audit.min_ratio(), r(1, 3));
        // The starved flow is exactly the fabric-bottlenecked type-3 flow.
        let starved: Vec<_> = audit
            .ratios
            .iter()
            .enumerate()
            .filter(|&(_, &x)| x == r(1, 3))
            .map(|(i, _)| FlowId::from(i))
            .collect();
        assert_eq!(starved, vec![t.type3_flow()]);
        assert!(audit.fabric_bottlenecked().contains(&t.type3_flow()));
        assert!(audit.bounds_hold());
    }

    #[test]
    fn display_summarizes() {
        let clos = ClosNetwork::standard(2);
        let ms = MacroSwitch::standard(2);
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(2, 0))];
        let routing: Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
        let audit = audit_routing(&clos, &ms, &flows, &routing);
        let text = audit.to_string();
        assert!(text.contains("throughput 1"));
        assert!(text.contains("bounds hold: true"));
    }

    #[test]
    #[should_panic(expected = "empty collection")]
    fn empty_collection_rejected() {
        let clos = ClosNetwork::standard(1);
        let ms = MacroSwitch::standard(1);
        let _ = audit_routing(&clos, &ms, &[], &Routing::new(vec![]));
    }
}
