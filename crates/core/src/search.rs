//! Deterministic parallel branch-and-bound search over canonical routings.
//!
//! Both routing objectives of §2.3 (and the relative objective of §7)
//! reduce to the same problem: over the `n^F` routings of `F` flows in
//! a fabric with `n` routing classes (the paper's `C_n`, where a class
//! is a middle switch; a Benes network, where it is a top/bottom
//! descent; an oversubscribed fat-tree, where it is a core switch),
//! maximize a key derived from the max-min fair allocation. This
//! module is the shared engine, generic over [`Fabric`]. It improves on
//! naive enumeration three ways, without leaving exact territory:
//!
//! 1. **Combined symmetry reduction, capacity-class aware.** Permuting
//!    identical flows always preserves allocations; relabeling routing
//!    classes preserves them only within a *capacity equivalence
//!    class* — classes whose interchange signatures
//!    ([`Fabric::class_signature`]) are identical (on a pristine Clos
//!    fabric every middle switch is in one class; failures split
//!    classes, and fabrics with smaller symmetry groups report
//!    singleton signatures). The enumerator emits only
//!    assignments that are simultaneously *group-sorted*
//!    (non-decreasing within each set of identical flows) and
//!    *first-use canonical per class* (the `j`-th distinct member of a
//!    class to appear is the `j`-th member of that class in class
//!    order). Every orbit keeps a representative: its lexicographically
//!    least element satisfies both constraints at once — if it violated
//!    group-sortedness, sorting within groups would produce a
//!    lex-smaller orbit element; and if some class's members first
//!    appeared out of order, relabeling that class by first use would
//!    map the first out-of-order member to a smaller same-class index,
//!    again lex-smaller (re-sorting groups afterwards only decreases
//!    further, and the process terminates because the element strictly
//!    decreases). With one class this degenerates to the classic
//!    uniform reduction, byte for byte.
//! 2. **Branch-and-bound pruning.** Each [`Objective`] may supply an
//!    *admissible* per-prefix upper bound on its key; subtrees whose bound
//!    cannot strictly beat the incumbent are skipped (counted in telemetry
//!    as `search.pruned`).
//! 3. **Prefix-splitting parallelism.** The canonical tree is split into
//!    blocks at a fixed prefix depth and the blocks are distributed over
//!    `std::thread::scope` workers.
//! 4. **Compiled evaluation.** The instance is compiled once
//!    ([`crate::compiled`]) into dense flow→link incidence tables, and
//!    each worker evaluates assignments into its own reusable
//!    [`EvalScratch`] — the steady-state leaf loop performs no heap
//!    allocations (asserted by `bench_search`'s counting allocator).
//!
//! # Determinism
//!
//! Results and [`SearchStats`] are byte-identical for any thread count.
//! The block decomposition depends only on the instance (smallest depth
//! with at least [`BLOCK_TARGET`] canonical prefixes), each block prunes
//! against a *block-local* incumbent seeded with the key of the first
//! canonical leaf (the all-zeros assignment, evaluated once up front), and
//! block winners are merged in block order with a strict comparison. The
//! final answer is therefore always the lexicographically first canonical
//! assignment attaining the optimal key — exactly what a sequential
//! first-wins scan returns — and every per-block statistic is a property
//! of the block alone, independent of scheduling.
//!
//! Pruning cannot lose that first winner: a subtree is skipped only when
//! its bound is `<=` the local incumbent key, and the incumbent (seed or
//! an earlier leaf of the same block) always precedes the subtree in
//! lexicographic order, so any equal-key leaf inside it was never going to
//! replace the incumbent.
//!
//! [`SearchStats`]: crate::objectives::SearchStats

use std::sync::atomic::{AtomicUsize, Ordering};

use clos_fairness::{max_min_fair, Allocation, SortedRates};
use clos_net::{ClosNetwork, Fabric, Flow, LinkId, Routing};
use clos_rational::Rational;
use clos_telemetry::counters;

use crate::compiled::{CompiledInstance, EvalScratch};
use crate::objectives::{SampledBranch, SearchProfile, SearchStats};

/// Target number of prefix blocks for the parallel decomposition.
///
/// The split depth is the smallest depth whose canonical prefix count
/// reaches this target (clamped to the flow count), *independent of the
/// thread count* — that is what keeps [`SearchStats`] identical across
/// thread counts while still giving a 16-way machine enough blocks to
/// balance load.
pub const BLOCK_TARGET: usize = 64;

/// Upper cap on the auto-detected thread count.
const MAX_AUTO_THREADS: usize = 8;

/// Per-block cap on sampled branches ([`SearchConfig::trace_sample`]);
/// with [`BLOCK_TARGET`] blocks the global
/// [`SearchProfile::MAX_SAMPLED`] cap usually binds first.
const MAX_SAMPLED_PER_BLOCK: usize = 4;

/// Requested worker count: 0 means "auto" (env var, then hardware).
static SEARCH_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count for subsequent searches (process-global).
///
/// `0` restores the default resolution order: the `CLOS_SEARCH_THREADS`
/// environment variable if set, otherwise the available hardware
/// parallelism capped at 8. Results are identical for every setting; only
/// wall-clock time changes.
pub fn set_search_threads(threads: usize) {
    SEARCH_THREADS.store(threads, Ordering::Release);
}

/// Resolves the worker count a search started now would use.
#[must_use]
pub fn search_threads() -> usize {
    let explicit = SEARCH_THREADS.load(Ordering::Acquire);
    if explicit > 0 {
        return explicit;
    }
    if let Ok(var) = std::env::var("CLOS_SEARCH_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(MAX_AUTO_THREADS)
}

/// Tuning knobs for one search run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SearchConfig {
    /// Worker count; `None` resolves via [`search_threads`].
    pub threads: Option<usize>,
    /// Disables branch-and-bound pruning when `true` (the enumeration
    /// then visits every canonical assignment). Used by benchmarks to
    /// measure the pruning contribution; results are identical either way.
    pub no_prune: bool,
    /// Sampled branch-trace mode: `Some(k)` records every `k`-th
    /// examined leaf of each block (first leaf included) into
    /// [`SearchProfile::sampled`], capped per block and globally.
    /// Sampling is keyed to the block-local examination index, so the
    /// recorded sample is identical for any thread count. `None` (the
    /// default) records nothing.
    pub trace_sample: Option<u64>,
}

/// Precomputed, read-only view of one search instance, shared by all
/// workers and handed to [`Objective::prefix_bound`].
///
/// Evaluation goes through the [`CompiledInstance`] built at
/// construction time: applying an assignment is a dense table walk into
/// a caller-provided [`EvalScratch`], never a fresh `Routing`.
#[derive(Debug)]
pub struct Problem<'a, F: Fabric = ClosNetwork> {
    fabric: &'a F,
    flows: &'a [Flow],
    /// Dense flow→link incidence tables (built under `search.compile`).
    compiled: CompiledInstance,
    /// Up-side cover link of flow `i` via class `c`: the interior link
    /// right after the source host link (the host link itself on
    /// two-link paths) — on Clos, the ToR→middle uplink.
    uplinks: Vec<Vec<LinkId>>,
    /// Down-side mirror of [`Self::uplinks`].
    downlinks: Vec<Vec<LinkId>>,
    /// Finite capacity of every link, indexed by dense [`LinkId`] — the
    /// per-link generalization that keeps both bounds admissible on
    /// asymmetric (failure-degraded) fabrics.
    link_cap: Vec<Rational>,
    /// Capacity sum of the distinct source host-uplinks among
    /// `flows[k..]`, for every `k` (uniform fabrics: capacity x count).
    suffix_src_cap: Vec<Rational>,
    /// Capacity sum of the distinct destination host-downlinks among
    /// `flows[k..]`.
    suffix_dst_cap: Vec<Rational>,
    /// Per-flow rate cap: `min(source host link, destination host link,
    /// best interior cover pair over all classes)` — what a flow can
    /// carry under *any* assignment.
    flow_caps: Vec<Rational>,
    /// The nominal construction capacity
    /// ([`Fabric::nominal_capacity`]; individual links may have been
    /// degraded below it).
    capacity: Rational,
}

impl<'a, F: Fabric> Problem<'a, F> {
    /// Compiles the search instance for `flows` in `fabric` (public so
    /// custom [`Objective`] implementations can be developed and tested
    /// against the same view the engine uses).
    ///
    /// # Panics
    ///
    /// Panics if a flow endpoint is not a source/destination of
    /// `fabric`.
    #[must_use]
    pub fn new(fabric: &'a F, flows: &'a [Flow]) -> Problem<'a, F> {
        let n = fabric.class_count();
        let compiled = CompiledInstance::new(fabric, flows);
        let link_cap: Vec<Rational> = fabric
            .network()
            .links()
            .map(|l| l.capacity().finite().expect("fabric links are finite"))
            .collect();
        let mut uplinks = Vec::with_capacity(flows.len());
        let mut downlinks = Vec::with_capacity(flows.len());
        let mut src_host = Vec::with_capacity(flows.len());
        let mut dst_host = Vec::with_capacity(flows.len());
        let mut path: Vec<LinkId> = Vec::with_capacity(fabric.max_path_len());
        for &f in flows {
            let mut ups = Vec::with_capacity(n);
            let mut downs = Vec::with_capacity(n);
            for c in 0..n {
                path.clear();
                fabric.append_links_via(f, c, &mut path);
                let len = path.len();
                if len >= 3 {
                    ups.push(path[1]);
                    downs.push(path[len - 2]);
                } else {
                    ups.push(path[0]);
                    downs.push(path[len - 1]);
                }
            }
            // The first/last links are class-independent host access
            // links by the Fabric contract, so reading them off the last
            // enumerated class is sound.
            src_host.push(path[0]);
            dst_host.push(path[path.len() - 1]);
            uplinks.push(ups);
            downlinks.push(downs);
        }
        // Suffix capacity sums of distinct host links (a flow crosses its
        // source host link and destination host link no matter the
        // class). Sums of per-link capacities, not counts x capacity, so
        // the cover bounds stay admissible when host links are degraded.
        let mut suffix_src_cap = vec![Rational::ZERO; flows.len() + 1];
        let mut suffix_dst_cap = vec![Rational::ZERO; flows.len() + 1];
        let mut seen_src = std::collections::BTreeSet::new();
        let mut seen_dst = std::collections::BTreeSet::new();
        let (mut src_acc, mut dst_acc) = (Rational::ZERO, Rational::ZERO);
        for k in (0..flows.len()).rev() {
            if seen_src.insert(src_host[k]) {
                src_acc += link_cap[src_host[k].index()];
            }
            if seen_dst.insert(dst_host[k]) {
                dst_acc += link_cap[dst_host[k].index()];
            }
            suffix_src_cap[k] = src_acc;
            suffix_dst_cap[k] = dst_acc;
        }
        let flow_caps: Vec<Rational> = (0..flows.len())
            .map(|i| {
                // Fold from zero: capacities are nonnegative, so the
                // identity is exact even for the n = 1 fabric.
                let interior = (0..n)
                    .map(|c| link_cap[uplinks[i][c].index()].min(link_cap[downlinks[i][c].index()]))
                    .fold(Rational::ZERO, Rational::max);
                link_cap[src_host[i].index()]
                    .min(link_cap[dst_host[i].index()])
                    .min(interior)
            })
            .collect();
        Problem {
            fabric,
            flows,
            compiled,
            uplinks,
            downlinks,
            link_cap,
            suffix_src_cap,
            suffix_dst_cap,
            flow_caps,
            capacity: fabric.nominal_capacity(),
        }
    }

    /// The fabric being searched.
    #[must_use]
    pub fn fabric(&self) -> &'a F {
        self.fabric
    }

    /// The flow collection being routed.
    #[must_use]
    pub fn flows(&self) -> &'a [Flow] {
        self.flows
    }

    /// The nominal construction capacity (individual links may carry
    /// less after failure overlays; the bounds use per-link values).
    #[must_use]
    pub fn capacity(&self) -> Rational {
        self.capacity
    }

    /// Water-fills the routing selecting `assignment[i]` as flow `i`'s
    /// class (a prefix of the flow collection is allowed, evaluating the
    /// prefix flows alone) into `scratch` — the compiled fast path: an
    /// O(flows) incidence-table walk with no steady-state allocation.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is longer than the flow collection or
    /// assigns an out-of-range class.
    pub fn evaluate(&self, scratch: &mut EvalScratch, assignment: &[usize]) {
        self.compiled.evaluate(scratch, assignment);
    }

    /// Builds the routing selecting `assignment[i]` as flow `i`'s class;
    /// `assignment` may cover just a prefix of the flow collection.
    #[must_use]
    pub fn partial_routing(&self, assignment: &[usize]) -> Routing {
        Routing::new(
            assignment
                .iter()
                .enumerate()
                .map(|(i, &c)| self.fabric.path_via_class(self.flows[i], c))
                .collect(),
        )
    }

    /// Max-min fair allocation of the *prefix* flows routed by
    /// `assignment`, ignoring the unassigned remainder — the allocating
    /// reference path ([`Self::evaluate`] is the equivalent compiled
    /// one), kept for bound-admissibility tests and one-shot callers.
    #[must_use]
    pub fn prefix_allocation(&self, assignment: &[usize]) -> Allocation<Rational> {
        let routing = self.partial_routing(assignment);
        max_min_fair::<Rational>(
            self.fabric.network(),
            &self.flows[..assignment.len()],
            &routing,
        )
        .expect("fabric links are finite")
    }

    /// Admissible upper bound on the *total throughput* of any completion
    /// of `prefix` (a cover argument): every flow's rate crosses its
    /// source host link and its destination host link, every assigned
    /// flow's rate crosses its chosen class's interior cover links, and
    /// each link carries at most its capacity. Summing capacities over
    /// either cover — assigned up-side cover links plus unassigned
    /// source host links, or the down-side mirror — bounds the total.
    #[must_use]
    pub fn throughput_cover_bound(&self, prefix: &[usize]) -> Rational {
        self.throughput_cover_bound_with(&mut EvalScratch::default(), prefix)
    }

    /// [`Self::throughput_cover_bound`] deduping into the scratch's
    /// reusable link buffers instead of fresh `Vec`s (the engine's
    /// prune-path variant).
    #[must_use]
    pub fn throughput_cover_bound_with(
        &self,
        scratch: &mut EvalScratch,
        prefix: &[usize],
    ) -> Rational {
        let k = prefix.len();
        let (up, down) = scratch.link_buffers();
        up.clear();
        down.clear();
        for (i, &c) in prefix.iter().enumerate() {
            up.push(self.uplinks[i][c]);
            down.push(self.downlinks[i][c]);
        }
        up.sort_unstable();
        up.dedup();
        down.sort_unstable();
        down.dedup();
        // Capacity sums (not counts x uniform capacity): each cover
        // element carries at most its own — possibly degraded — capacity.
        let mut up_cap = self.suffix_src_cap[k];
        for l in up.iter() {
            up_cap += self.link_cap[l.index()];
        }
        let mut down_cap = self.suffix_dst_cap[k];
        for l in down.iter() {
            down_cap += self.link_cap[l.index()];
        }
        up_cap
            .min(down_cap)
            .min(self.suffix_src_cap[0])
            .min(self.suffix_dst_cap[0])
    }
}

/// A search objective: a (partially) ordered key computed from the
/// max-min fair allocation of a routing, plus an optional admissible
/// bound that enables branch-and-bound pruning.
///
/// The engine evaluates routings into an [`EvalScratch`]
/// ([`Problem::evaluate`]) and consults the objective in two modes:
/// [`Self::beats`] on the allocation-free hot path (once per leaf), and
/// [`Self::key`] only when an improvement must be materialized. The two
/// must agree: `beats(incumbent, scratch)` iff
/// `key(scratch) > incumbent` under [`PartialOrd`].
pub trait Objective<F: Fabric = ClosNetwork>: Sync {
    /// Comparison key; the search maximizes it. Ties are broken toward
    /// the lexicographically first canonical assignment. (`Sync` because
    /// the seed key is shared with every worker by reference.)
    type Key: PartialOrd + Clone + Send + Sync;

    /// Materializes the key of the evaluation held in `scratch`. May
    /// allocate: the engine calls this only for the seed and on strict
    /// improvements, never per examined leaf.
    fn key(&self, scratch: &mut EvalScratch) -> Self::Key;

    /// Whether the evaluation held in `scratch` strictly beats
    /// `incumbent` — the hot path, called once per examined leaf.
    /// Implementations borrow scratch buffers (e.g.
    /// [`EvalScratch::sorted_by`]) instead of allocating.
    fn beats(&self, incumbent: &Self::Key, scratch: &mut EvalScratch) -> bool;

    /// An upper bound on [`Self::key`] over *every* completion of
    /// `prefix` (flows `prefix.len()..` still unassigned), or `None` to
    /// skip pruning at this prefix. Soundness requirement: whenever the
    /// bound compares `<=` to some key `k`, no completion's key exceeds
    /// `k`. `scratch` is available for prefix evaluations; its previous
    /// contents may be clobbered.
    fn prefix_bound(
        &self,
        problem: &Problem<'_, F>,
        prefix: &[usize],
        scratch: &mut EvalScratch,
    ) -> Option<Self::Key>;

    /// Whether *no* completion of `prefix` can strictly beat `incumbent`
    /// — the pruning predicate the engine actually calls. The default
    /// materializes [`Self::prefix_bound`]; implementations may override
    /// it to compare against borrowed scratch buffers instead (it must
    /// decide exactly as the default does, or pruning statistics change).
    fn prefix_cannot_beat(
        &self,
        problem: &Problem<'_, F>,
        prefix: &[usize],
        incumbent: &Self::Key,
        scratch: &mut EvalScratch,
    ) -> bool {
        self.prefix_bound(problem, prefix, scratch)
            .is_some_and(|bound| bound_cannot_beat(&bound, incumbent))
    }
}

/// Lex-max-min fairness (Definition 2.4): the key is the sorted rate
/// vector, compared lexicographically from the smallest rate.
///
/// Its prefix bound concatenates the max-min fair rates of the prefix
/// flows *alone* with each unassigned flow's individual rate cap
/// (host links and its best fabric pair — on a uniform fabric, one
/// full link capacity), and sorts. Admissibility: in any completion,
/// the allocation restricted to the prefix flows is feasible for the
/// prefix-only problem, whose max-min fair allocation is
/// leximin-maximal among feasible rate vectors; each unassigned flow
/// is individually capped by [`Problem`]'s `flow_caps` no matter which
/// middle it picks; and sorting is monotone under componentwise
/// domination of the two parts, so the concatenated bound vector
/// dominates every completion's sorted vector.
#[derive(Clone, Copy, Debug, Default)]
pub struct LexMaxMin;

/// Shared gate for [`LexMaxMin`]'s bound: a bound costs one
/// water-filling pass; only spend it where it can pay for a subtree
/// (>= n^2 leaves) on a meaningful prefix.
fn lex_bound_worthwhile(k: usize, f: usize) -> bool {
    k >= 2 && f - k >= 2
}

impl<F: Fabric> Objective<F> for LexMaxMin {
    type Key = SortedRates<Rational>;

    fn key(&self, scratch: &mut EvalScratch) -> Self::Key {
        SortedRates::from_unsorted(scratch.rates().to_vec())
    }

    fn beats(&self, incumbent: &Self::Key, scratch: &mut EvalScratch) -> bool {
        scratch.sorted_by(|rates, buf| buf.extend_from_slice(rates)) > incumbent.rates()
    }

    fn prefix_bound(
        &self,
        problem: &Problem<'_, F>,
        prefix: &[usize],
        scratch: &mut EvalScratch,
    ) -> Option<Self::Key> {
        let k = prefix.len();
        let f = problem.flows().len();
        if !lex_bound_worthwhile(k, f) {
            return None;
        }
        problem.evaluate(scratch, prefix);
        let mut rates = scratch.rates().to_vec();
        rates.extend_from_slice(&problem.flow_caps[k..]);
        Some(SortedRates::from_unsorted(rates))
    }

    fn prefix_cannot_beat(
        &self,
        problem: &Problem<'_, F>,
        prefix: &[usize],
        incumbent: &Self::Key,
        scratch: &mut EvalScratch,
    ) -> bool {
        // Allocation-free mirror of the default: evaluate the prefix,
        // pad with the unassigned flows' caps in the scratch sort
        // buffer, compare.
        let k = prefix.len();
        let f = problem.flows().len();
        if !lex_bound_worthwhile(k, f) {
            return false;
        }
        problem.evaluate(scratch, prefix);
        let caps = &problem.flow_caps[k..];
        let bound = scratch.sorted_by(|rates, buf| {
            buf.extend_from_slice(rates);
            buf.extend_from_slice(caps);
        });
        bound <= incumbent.rates()
    }
}

/// Throughput-max-min fairness (Definition 2.5): the key is the total
/// throughput of the max-min fair allocation, bounded per prefix by
/// [`Problem::throughput_cover_bound`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ThroughputMaxMin;

impl<F: Fabric> Objective<F> for ThroughputMaxMin {
    type Key = Rational;

    fn key(&self, scratch: &mut EvalScratch) -> Self::Key {
        let mut total = Rational::ZERO;
        for &r in scratch.rates() {
            total += r;
        }
        total
    }

    fn beats(&self, incumbent: &Self::Key, scratch: &mut EvalScratch) -> bool {
        Objective::<F>::key(self, scratch) > *incumbent
    }

    fn prefix_bound(
        &self,
        problem: &Problem<'_, F>,
        prefix: &[usize],
        scratch: &mut EvalScratch,
    ) -> Option<Self::Key> {
        Some(problem.throughput_cover_bound_with(scratch, prefix))
    }
}

/// The canonical assignment space: per-position admissible values
/// encoding the combined symmetry reduction (see the module docs),
/// organized around *capacity equivalence classes* of routing classes.
///
/// Two routing classes are equivalent iff their interchange signatures
/// ([`Fabric::class_signature`]) agree — the fabric's certificate that
/// swapping them maps every routing to one with the same allocation (on
/// Clos, middles whose per-ToR uplink and downlink capacity vectors
/// both agree). First-use canonicalization applies per class: along any
/// path of the enumeration tree, the `j`-th distinct member of
/// equivalence class `c` to appear must be the `j`-th member of `c` in
/// ascending routing-class order. The
/// walker tracks, per position, how many members of each class the
/// prefix has used (a row of [`Self::classes`] counters); a value is
/// admissible iff its within-class rank does not exceed its class's
/// used count. On a uniform fabric there is a single class, the
/// admissible set is the contiguous range `lower..=used`, and the
/// enumeration is identical — order, admitted counts, and all — to the
/// historical uniform-only reduction.
pub(crate) struct CanonicalSpace {
    n: usize,
    /// Number of capacity equivalence classes (1 on a pristine Clos).
    classes: usize,
    /// Routing class -> its equivalence class, numbered by smallest member.
    class_of: Vec<u32>,
    /// Routing class -> rank among its equivalence class's members in
    /// ascending order.
    rank_in_class: Vec<u32>,
    /// Previous position holding an identical flow, if any.
    prev_in_group: Vec<Option<usize>>,
}

impl CanonicalSpace {
    pub(crate) fn new<F: Fabric>(fabric: &F, flows: &[Flow]) -> CanonicalSpace {
        use std::collections::BTreeMap;
        let mut last: BTreeMap<(clos_net::NodeId, clos_net::NodeId), usize> = BTreeMap::new();
        let mut prev_in_group = vec![None; flows.len()];
        for (i, f) in flows.iter().enumerate() {
            prev_in_group[i] = last.insert((f.src(), f.dst()), i);
        }
        let n = fabric.class_count();
        // Interchange signature of a routing class, as certified by the
        // fabric: equal signature == interchangeable under every flow
        // collection (on Clos, the per-ToR uplink and downlink capacity
        // vectors; fabrics with less symmetry tag classes apart).
        let mut reprs: Vec<(usize, Vec<clos_net::Capacity>)> = Vec::new();
        let mut class_of = Vec::with_capacity(n);
        let mut rank_in_class = Vec::with_capacity(n);
        let mut class_sizes: Vec<u32> = Vec::new();
        for m in 0..n {
            let sig = fabric.class_signature(m);
            let class = match reprs.iter().position(|r| *r == sig) {
                Some(c) => c,
                None => {
                    reprs.push(sig);
                    class_sizes.push(0);
                    reprs.len() - 1
                }
            };
            class_of.push(class as u32);
            rank_in_class.push(class_sizes[class]);
            class_sizes[class] += 1;
        }
        // Degenerate-case guard (successor of the hard "all links have
        // equal capacity" assumption this reduction once silently made):
        // a fabric whose links all carry one capacity and whose classes
        // share a structural tag must collapse to a single equivalence
        // class, or the reduction would enumerate a wrong orbit set.
        // Kept as a debug assertion now that non-uniform fabrics are
        // first-class. (Fabrics like the Benes network deliberately tag
        // classes apart — their symmetry group is smaller than the full
        // symmetric group — and are exempt via the tag check.)
        debug_assert!(
            {
                let mut caps = fabric.network().links().map(|l| l.capacity());
                let first = caps.next();
                let uniform = caps.all(|c| Some(c) == first);
                let tags_equal = reprs.iter().all(|r| r.0 == reprs[0].0);
                !(uniform && tags_equal) || reprs.len() == 1
            },
            "uniform fabric produced {} capacity classes; the symmetry \
             reduction would enumerate a wrong orbit set",
            reprs.len()
        );
        CanonicalSpace {
            n,
            classes: reprs.len(),
            class_of,
            rank_in_class,
            prev_in_group,
        }
    }

    /// Allocates the walker's per-position used-count rows for
    /// assignments of length `count`: row `i` (a `classes`-wide slice)
    /// holds, for each class, how many of its members appear in
    /// `assignment[..i]`. Row 0 is all zeros; [`Self::fill_next_row`]
    /// derives each subsequent row.
    pub(crate) fn rows(&self, count: usize) -> Vec<u32> {
        vec![0; (count + 1) * self.classes]
    }

    /// Borrows row `i` of `used`.
    fn row<'u>(&self, used: &'u [u32], i: usize) -> &'u [u32] {
        &used[i * self.classes..(i + 1) * self.classes]
    }

    /// Fills row `i + 1` from row `i` and the value chosen at position
    /// `i`: the chosen value's class gains one used member iff the value
    /// was fresh for its class.
    pub(crate) fn fill_next_row(&self, used: &mut [u32], i: usize, value: usize) {
        let c = self.classes;
        let (head, tail) = used.split_at_mut((i + 1) * c);
        let row = &head[i * c..];
        let next = &mut tail[..c];
        next.copy_from_slice(row);
        let class = self.class_of[value] as usize;
        debug_assert!(
            self.rank_in_class[value] <= row[class],
            "inadmissible value {value} reached fill_next_row"
        );
        if self.rank_in_class[value] == row[class] {
            next[class] += 1;
        }
    }

    /// Whether `value` is admissible under the used-count `row`:
    /// reusing an already-introduced member of its class, or
    /// introducing exactly its class's next member.
    fn admissible(&self, row: &[u32], value: usize) -> bool {
        self.rank_in_class[value] <= row[self.class_of[value] as usize]
    }

    /// Smallest admissible value `>= from`, or `n` (the exhaustion
    /// sentinel) when none remains.
    fn next_admissible(&self, row: &[u32], from: usize) -> usize {
        (from..self.n)
            .find(|&v| self.admissible(row, v))
            .unwrap_or(self.n)
    }

    /// Number of admissible values `>= lower` (the walker's branching
    /// factor at a position; `n - admitted` is the symmetry skip count).
    fn admitted(&self, row: &[u32], lower: usize) -> usize {
        (lower..self.n).filter(|&v| self.admissible(row, v)).count()
    }

    /// Smallest admissible value at position `i` given the prefix:
    /// group-sortedness forces at least the previous identical flow's
    /// value. (First-use canonicalization never rules this value out:
    /// the group bound was already used in the prefix, so its class rank
    /// is strictly below its class's used count — the admissible set at
    /// or above `lower` is never empty.)
    fn lower(&self, assignment: &[usize], i: usize) -> usize {
        self.prev_in_group[i].map_or(0, |p| assignment[p])
    }
}

/// Callbacks driving the canonical walker.
pub(crate) trait Visitor {
    /// Called once per proper prefix (never the block root, never a
    /// complete assignment); returning `true` skips the subtree.
    fn prune(&mut self, _prefix: &[usize]) -> bool {
        false
    }

    /// Called when the walker starts enumerating values at `position`
    /// (i.e. expands the prefix of that length), with the number of
    /// middle choices the canonical space admits there. The default
    /// ignores it; the engine's visitor derives its per-depth node
    /// histogram and symmetry-skip counter from this hook.
    fn enter(&mut self, _position: usize, _admitted: usize) {}

    /// Called once per surviving complete assignment.
    fn leaf(&mut self, assignment: &[usize]);
}

/// Iteratively enumerates, in lexicographic order, every canonical
/// completion of `assignment[..start]` — an explicit-stack depth-first
/// walk, so deep flow collections cannot overflow the call stack.
///
/// `used` holds the per-position used-count rows ([`CanonicalSpace::rows`]);
/// rows `0..=start` must describe `assignment[..start]` on entry
/// ([`CanonicalSpace::fill_next_row`] per prefix position), and the
/// walker maintains the deeper rows. Within a position, values advance
/// through the admissible set in ascending order — on a single-class
/// (uniform) fabric that set is the contiguous range the historical
/// walker scanned, so the visit order is unchanged there.
pub(crate) fn walk_completions(
    space: &CanonicalSpace,
    assignment: &mut [usize],
    used: &mut [u32],
    start: usize,
    visitor: &mut impl Visitor,
) {
    let count = assignment.len();
    if start == count {
        visitor.leaf(assignment);
        return;
    }
    let mut i = start;
    // The group lower bound is always admissible (see `lower`), so the
    // first candidate at a freshly entered position needs no scan.
    assignment[i] = space.lower(assignment, i);
    visitor.enter(i, space.admitted(space.row(used, i), assignment[i]));
    loop {
        // Invariant: `assignment[i]` is an admissible value, or the
        // sentinel `n` once the position is exhausted.
        if assignment[i] < space.n {
            space.fill_next_row(used, i, assignment[i]);
            if i + 1 == count {
                visitor.leaf(assignment);
            } else if !visitor.prune(&assignment[..=i]) {
                i += 1;
                assignment[i] = space.lower(assignment, i);
                visitor.enter(i, space.admitted(space.row(used, i), assignment[i]));
                continue;
            }
            assignment[i] = space.next_admissible(space.row(used, i), assignment[i] + 1);
            continue;
        }
        // Values exhausted at this depth: backtrack.
        if i == start {
            return;
        }
        i -= 1;
        assignment[i] = space.next_admissible(space.row(used, i), assignment[i] + 1);
    }
}

/// A [`Visitor`] that collects every leaf (used for prefix enumeration
/// and by tests).
struct Collect(Vec<Vec<usize>>);

impl Visitor for Collect {
    fn leaf(&mut self, assignment: &[usize]) {
        self.0.push(assignment.to_vec());
    }
}

/// Collects every canonical prefix of length `depth`.
fn canonical_prefixes(space: &CanonicalSpace, depth: usize) -> Vec<Vec<usize>> {
    let mut assignment = vec![0usize; depth];
    let mut used = space.rows(depth);
    let mut collect = Collect(Vec::new());
    walk_completions(space, &mut assignment, &mut used, 0, &mut collect);
    collect.0
}

/// Picks the block decomposition: the canonical prefixes at the smallest
/// depth reaching [`BLOCK_TARGET`] blocks (or the full depth).
fn prefix_blocks(space: &CanonicalSpace, flow_count: usize) -> (usize, Vec<Vec<usize>>) {
    let mut depth = 0;
    loop {
        let blocks = canonical_prefixes(space, depth);
        if blocks.len() >= BLOCK_TARGET || depth == flow_count {
            return (depth, blocks);
        }
        depth += 1;
    }
}

/// Per-block search outcome; every field is a pure function of the block,
/// the instance, and the seed key — never of thread scheduling.
struct BlockOutcome<K> {
    index: usize,
    /// Lexicographically first leaf of the block whose key strictly beats
    /// the seed key (with its key), if any.
    best: Option<(Vec<usize>, K)>,
    examined: u64,
    improvements: u64,
    pruned: u64,
    /// Per-depth histograms, prune provenance, and sampled leaves of
    /// this block alone.
    profile: SearchProfile,
}

fn strictly_greater<K: PartialOrd>(a: &K, b: &K) -> bool {
    matches!(a.partial_cmp(b), Some(std::cmp::Ordering::Greater))
}

fn bound_cannot_beat<K: PartialOrd>(bound: &K, incumbent: &K) -> bool {
    // Explicit on incomparability: only a bound provably <= the incumbent
    // justifies skipping the subtree.
    matches!(
        bound.partial_cmp(incumbent),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    )
}

/// Read-only state shared by every block of one search run.
struct SearchContext<'a, F: Fabric, O: Objective<F>> {
    space: CanonicalSpace,
    problem: Problem<'a, F>,
    objective: &'a O,
    config: SearchConfig,
    /// The all-zeros seed assignment and its key.
    seed: Vec<usize>,
    seed_key: O::Key,
}

/// The per-block worker: walks one block with block-local pruning,
/// evaluating into a per-worker [`EvalScratch`].
struct BlockVisitor<'a, 'p, 's, F: Fabric, O: Objective<F>> {
    ctx: &'a SearchContext<'p, F, O>,
    scratch: &'s mut EvalScratch,
    /// The seed leaf lives in the first block; skip its re-evaluation
    /// there (it was examined up front).
    seed_pending: bool,
    outcome: BlockOutcome<O::Key>,
}

// The block-local incumbent is the best leaf so far, else the shared
// seed key, borrowed straight out of `outcome.best` (field-disjoint from
// the scratch). Holding it by reference instead of cloning into a shadow
// field is what lets improvements store their key exactly once.
impl<F: Fabric, O: Objective<F>> Visitor for BlockVisitor<'_, '_, '_, F, O> {
    fn prune(&mut self, prefix: &[usize]) -> bool {
        if self.ctx.config.no_prune {
            return false;
        }
        let incumbent = self
            .outcome
            .best
            .as_ref()
            .map_or(&self.ctx.seed_key, |(_, key)| key);
        if self
            .ctx
            .objective
            .prefix_cannot_beat(&self.ctx.problem, prefix, incumbent, self.scratch)
        {
            self.outcome.pruned += 1;
            self.outcome.profile.bound_pruned += 1;
            self.outcome.profile.depth_pruned[prefix.len()] += 1;
            counters::SEARCH_PRUNED.incr();
            true
        } else {
            false
        }
    }

    fn enter(&mut self, position: usize, admitted: usize) {
        self.outcome.profile.depth_nodes[position] += 1;
        let n = self.ctx.space.n;
        self.outcome.profile.symmetry_skipped += (n.saturating_sub(admitted)) as u64;
    }

    fn leaf(&mut self, assignment: &[usize]) {
        if self.seed_pending && assignment == &self.ctx.seed[..] {
            self.seed_pending = false;
            return;
        }
        self.outcome.examined += 1;
        counters::SEARCH_ASSIGNMENTS.incr();
        let sampled = self.ctx.config.trace_sample.is_some_and(|k| {
            (self.outcome.examined - 1).is_multiple_of(k.max(1))
                && self.outcome.profile.sampled.len() < MAX_SAMPLED_PER_BLOCK
        });
        self.ctx.problem.evaluate(self.scratch, assignment);
        let incumbent = self
            .outcome
            .best
            .as_ref()
            .map_or(&self.ctx.seed_key, |(_, key)| key);
        let improved = self.ctx.objective.beats(incumbent, self.scratch);
        if improved {
            self.outcome.improvements += 1;
            counters::SEARCH_IMPROVEMENTS.incr();
            // Histogram the improvement at the first position where the
            // new incumbent diverges from the one it replaces — a pure
            // function of the block, not of scheduling.
            let previous = self
                .outcome
                .best
                .as_ref()
                .map_or(&self.ctx.seed[..], |(a, _)| &a[..]);
            let divergence = assignment
                .iter()
                .zip(previous)
                .position(|(a, b)| a != b)
                .unwrap_or(assignment.len());
            self.outcome.profile.depth_improvements[divergence] += 1;
            let key = self.ctx.objective.key(self.scratch);
            self.outcome.best = Some((assignment.to_vec(), key));
        }
        if sampled {
            self.outcome.profile.sampled.push(SampledBranch {
                block: self.outcome.index,
                assignment: assignment.to_vec(),
                improved,
            });
        }
    }
}

fn process_block<F: Fabric, O: Objective<F>>(
    ctx: &SearchContext<'_, F, O>,
    index: usize,
    prefix: &[usize],
    scratch: &mut EvalScratch,
) -> BlockOutcome<O::Key> {
    let _span = clos_telemetry::span_root("search.block");
    let flow_count = ctx.problem.flows().len();
    let depth = prefix.len();
    let mut assignment = vec![0usize; flow_count];
    assignment[..depth].copy_from_slice(prefix);
    let mut used = ctx.space.rows(flow_count);
    for (i, &middle) in assignment.iter().enumerate().take(depth) {
        ctx.space.fill_next_row(&mut used, i, middle);
    }
    let mut visitor = BlockVisitor {
        ctx,
        scratch,
        seed_pending: index == 0,
        outcome: BlockOutcome {
            index,
            best: None,
            examined: 0,
            improvements: 0,
            pruned: 0,
            profile: SearchProfile::for_depth(flow_count),
        },
    };
    // The walker only bounds prefixes strictly deeper than the block
    // root; bound the root itself first.
    if depth > 0 && depth < flow_count && visitor.prune(&assignment[..depth]) {
        // Reclassify the prune just recorded: the whole block died at
        // its root, the bound never cut inside the walk.
        visitor.outcome.profile.bound_pruned -= 1;
        visitor.outcome.profile.root_pruned += 1;
        return visitor.outcome;
    }
    visitor.outcome.profile.blocks_exhausted += 1;
    walk_completions(&ctx.space, &mut assignment, &mut used, depth, &mut visitor);
    visitor.outcome
}

/// Runs the full search: returns the lexicographically first canonical
/// assignment maximizing the objective key, plus deterministic statistics.
///
/// # Panics
///
/// Panics if a flow endpoint is invalid for `fabric`, or if evaluation
/// itself panicked on a worker thread.
pub fn run_search<F: Fabric + Sync, O: Objective<F>>(
    fabric: &F,
    flows: &[Flow],
    objective: &O,
    config: SearchConfig,
) -> (Vec<usize>, SearchStats) {
    let _timer = clos_telemetry::timers::SEARCH.scope();
    let _span = clos_telemetry::span("search");
    counters::SEARCH_RUNS.incr();

    let problem = Problem::new(fabric, flows);
    let space = CanonicalSpace::new(fabric, flows);
    let (_, blocks) = prefix_blocks(&space, flows.len());

    // Seed incumbent: the lexicographically first canonical leaf — all
    // zeros, since every position's group and first-use lower bound is 0.
    let seed = vec![0usize; flows.len()];
    let mut seed_scratch = EvalScratch::default();
    counters::SEARCH_ASSIGNMENTS.incr();
    {
        let _seed_span = clos_telemetry::span("search.seed");
        problem.evaluate(&mut seed_scratch, &seed);
    }
    let seed_key = objective.key(&mut seed_scratch);
    counters::SEARCH_IMPROVEMENTS.incr();

    let ctx = SearchContext {
        space,
        problem,
        objective,
        config,
        seed,
        seed_key,
    };

    let threads = config.threads.unwrap_or_else(search_threads).max(1);
    let mut outcomes: Vec<BlockOutcome<O::Key>> = if threads == 1 || blocks.len() <= 1 {
        // Sequential path: the (already warm) seed scratch serves every
        // block.
        blocks
            .iter()
            .enumerate()
            .map(|(index, prefix)| process_block(&ctx, index, prefix, &mut seed_scratch))
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let workers = threads.min(blocks.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // One scratch per worker: block outcomes stay a
                        // pure function of the block, so results and
                        // stats are byte-identical for any thread count.
                        let mut scratch = EvalScratch::default();
                        let mut mine = Vec::new();
                        loop {
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            let Some(prefix) = blocks.get(index) else {
                                break;
                            };
                            mine.push(process_block(&ctx, index, prefix, &mut scratch));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("search worker panicked"))
                .collect()
        })
    };

    // Deterministic merge: block order, strict improvement only, so the
    // earliest block (hence the lexicographically earliest leaf) wins
    // ties.
    outcomes.sort_by_key(|o| o.index);
    // The seed's up-front examination/improvement is histogrammed at
    // depth 0, keeping `sum(depth_improvements) == improvements`.
    let mut seed_profile = SearchProfile::for_depth(flows.len());
    seed_profile.depth_improvements[0] = 1;
    let mut stats = SearchStats {
        routings_examined: 1,
        improvements: 1,
        pruned: 0,
        profile: seed_profile,
    };
    let mut best_assignment = ctx.seed;
    let mut best_key = ctx.seed_key;
    for outcome in outcomes {
        stats.routings_examined += outcome.examined;
        stats.improvements += outcome.improvements;
        stats.pruned += outcome.pruned;
        stats.profile.merge(&outcome.profile);
        if let Some((assignment, key)) = outcome.best {
            if strictly_greater(&key, &best_key) {
                best_key = key;
                best_assignment = assignment;
            }
        }
    }
    (best_assignment, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn flows_from_coords(clos: &ClosNetwork, coords: &[(usize, usize, usize, usize)]) -> Vec<Flow> {
        coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect()
    }

    /// Enumerates all canonical leaves without pruning.
    fn all_leaves(clos: &ClosNetwork, flows: &[Flow]) -> Vec<Vec<usize>> {
        let space = CanonicalSpace::new(clos, flows);
        let mut assignment = vec![0usize; flows.len()];
        let mut used = space.rows(flows.len());
        let mut collect = Collect(Vec::new());
        walk_completions(&space, &mut assignment, &mut used, 0, &mut collect);
        collect.0
    }

    #[test]
    fn blocks_partition_the_leaves() {
        let clos = ClosNetwork::standard(3);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(3, 0)),
            Flow::new(clos.source(0, 0), clos.destination(3, 0)),
            Flow::new(clos.source(0, 1), clos.destination(3, 1)),
            Flow::new(clos.source(1, 0), clos.destination(4, 0)),
        ];
        let space = CanonicalSpace::new(&clos, &flows);
        let (depth, blocks) = prefix_blocks(&space, flows.len());
        let mut via_blocks = Vec::new();
        for prefix in &blocks {
            let mut assignment = vec![0usize; flows.len()];
            assignment[..depth].copy_from_slice(prefix);
            let mut used = space.rows(flows.len());
            for (i, &middle) in assignment.iter().enumerate().take(depth) {
                space.fill_next_row(&mut used, i, middle);
            }
            let mut collect = Collect(Vec::new());
            walk_completions(&space, &mut assignment, &mut used, depth, &mut collect);
            via_blocks.extend(collect.0);
        }
        assert_eq!(via_blocks, all_leaves(&clos, &flows));
    }

    #[test]
    fn seed_is_first_leaf_and_order_is_lexicographic() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(1, 0), clos.destination(3, 0)),
        ];
        let leaves = all_leaves(&clos, &flows);
        assert_eq!(leaves[0], vec![0, 0, 0]);
        for w in leaves.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    /// Admissibility of both prefix bounds: no completion's key exceeds
    /// the bound of any of its prefixes. Also pins the compiled pipeline
    /// to the allocating reference path (`prefix_allocation`) and
    /// [`Objective::beats`]/[`Objective::prefix_cannot_beat`] to their
    /// key-materializing definitions.
    fn check_bounds_admissible(coords: &[(usize, usize, usize, usize)]) {
        let clos = ClosNetwork::standard(2);
        let flows = flows_from_coords(&clos, coords);
        let problem = Problem::new(&clos, &flows);
        let mut scratch = EvalScratch::default();
        for leaf in all_leaves(&clos, &flows) {
            let alloc = problem.prefix_allocation(&leaf);
            problem.evaluate(&mut scratch, &leaf);
            // Compiled evaluation == fresh Routing + max_min_fair.
            assert_eq!(scratch.rates(), alloc.rates(), "compiled pipeline diverged");
            let lex_key = Objective::<ClosNetwork>::key(&LexMaxMin, &mut scratch);
            let tput_key = Objective::<ClosNetwork>::key(&ThroughputMaxMin, &mut scratch);
            assert_eq!(lex_key.rates(), alloc.sorted().rates());
            assert_eq!(tput_key, alloc.throughput());
            // beats == strict key comparison against itself (never) and
            // against a strictly smaller key (always: rates are positive).
            let lex = &LexMaxMin as &dyn Objective<ClosNetwork, Key = SortedRates<Rational>>;
            let tput = &ThroughputMaxMin as &dyn Objective<ClosNetwork, Key = Rational>;
            assert!(!lex.beats(&lex_key, &mut scratch));
            assert!(!tput.beats(&tput_key, &mut scratch));
            let zeros = SortedRates::from_unsorted(vec![Rational::ZERO; flows.len()]);
            assert!(lex.beats(&zeros, &mut scratch));
            assert!(tput.beats(&Rational::ZERO, &mut scratch));
            for k in 0..flows.len() {
                let lex_bound = LexMaxMin.prefix_bound(&problem, &leaf[..k], &mut scratch);
                if let Some(bound) = lex_bound {
                    assert!(bound >= lex_key, "lex bound below a completion's key");
                    // The engine's pruning predicate decides exactly as
                    // materializing the bound would.
                    assert_eq!(
                        LexMaxMin.prefix_cannot_beat(&problem, &leaf[..k], &lex_key, &mut scratch),
                        bound <= lex_key
                    );
                } else {
                    assert!(!LexMaxMin.prefix_cannot_beat(
                        &problem,
                        &leaf[..k],
                        &lex_key,
                        &mut scratch
                    ));
                }
                if let Some(bound) =
                    ThroughputMaxMin.prefix_bound(&problem, &leaf[..k], &mut scratch)
                {
                    assert!(
                        bound >= tput_key,
                        "throughput bound below a completion's key"
                    );
                }
            }
        }
    }

    /// The engine returns the lexicographically first canonical leaf
    /// attaining the optimum, for every thread count and with pruning on
    /// or off.
    fn check_engine_matches_first_wins_scan(coords: &[(usize, usize, usize, usize)]) {
        let clos = ClosNetwork::standard(2);
        let flows = flows_from_coords(&clos, coords);
        let problem = Problem::new(&clos, &flows);
        let mut scratch = EvalScratch::default();
        // Reference: sequential first-wins scan over all leaves.
        let mut expect: Option<(Vec<usize>, Rational)> = None;
        for leaf in all_leaves(&clos, &flows) {
            problem.evaluate(&mut scratch, &leaf);
            let key = Objective::<ClosNetwork>::key(&ThroughputMaxMin, &mut scratch);
            if expect.as_ref().is_none_or(|(_, b)| key > *b) {
                expect = Some((leaf, key));
            }
        }
        let (expect_leaf, _) = expect.unwrap();
        for (threads, no_prune) in [(1, false), (1, true), (3, false), (7, true)] {
            let config = SearchConfig {
                threads: Some(threads),
                no_prune,
                trace_sample: None,
            };
            let (got, _) = run_search(&clos, &flows, &ThroughputMaxMin, config);
            assert_eq!(got, expect_leaf, "threads={threads} no_prune={no_prune}");
        }
    }

    /// Statistics are identical across thread counts (the block
    /// decomposition, not the schedule, defines them).
    fn check_stats_identical_across_thread_counts(coords: &[(usize, usize, usize, usize)]) {
        let clos = ClosNetwork::standard(2);
        let flows = flows_from_coords(&clos, coords);
        let one = run_search(
            &clos,
            &flows,
            &LexMaxMin,
            SearchConfig {
                threads: Some(1),
                no_prune: false,
                trace_sample: None,
            },
        );
        for threads in [2, 5, 16] {
            let multi = run_search(
                &clos,
                &flows,
                &LexMaxMin,
                SearchConfig {
                    threads: Some(threads),
                    no_prune: false,
                    trace_sample: None,
                },
            );
            assert_eq!(one, multi, "threads={threads}");
        }
    }

    /// Deterministic coverage of the three engine invariants on fixed
    /// instances (duplicates, shared endpoints, singletons), so the
    /// invariants are exercised even where proptest is unavailable.
    #[test]
    fn fixed_instances_uphold_engine_invariants() {
        let instances: [&[(usize, usize, usize, usize)]; 4] = [
            &[(0, 1, 0, 1), (0, 1, 1, 0), (0, 1, 1, 1), (1, 0, 1, 0)],
            &[(0, 0, 2, 0), (0, 0, 2, 0), (1, 0, 3, 0)],
            &[(0, 0, 0, 0), (0, 0, 0, 0), (0, 0, 0, 0), (1, 1, 2, 1)],
            &[(2, 1, 3, 0)],
        ];
        for coords in instances {
            check_bounds_admissible(coords);
            check_engine_matches_first_wins_scan(coords);
            check_stats_identical_across_thread_counts(coords);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn prefix_bounds_are_admissible(
            coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 2..=5)
        ) {
            check_bounds_admissible(&coords);
        }

        #[test]
        fn engine_matches_first_wins_scan(
            coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=5)
        ) {
            check_engine_matches_first_wins_scan(&coords);
        }

        #[test]
        fn stats_identical_across_thread_counts(
            coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=5)
        ) {
            check_stats_identical_across_thread_counts(&coords);
        }
    }

    #[test]
    fn search_threads_resolution_prefers_explicit() {
        set_search_threads(3);
        assert_eq!(search_threads(), 3);
        set_search_threads(0);
        assert!(search_threads() >= 1);
    }
}
