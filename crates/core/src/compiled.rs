//! Compiled search instances: dense flow→link incidence tables.
//!
//! The branch-and-bound engine evaluates thousands of routing-class
//! assignments against one `(fabric, flow collection)` pair. Building a
//! [`Routing`](clos_net::Routing) of heap-allocated paths per assignment,
//! then letting the allocator re-derive which links each path crosses, is
//! pure rediscovery of facts that never change during a search. This
//! module compiles those facts once:
//!
//! * [`CompiledInstance`] — for every `(flow, class)` pair, the dense
//!   finite-link indices of the candidate path, stored CSR-style so
//!   fabrics with different path lengths (4 links on Clos, `2r` on a
//!   Benes of order `r`, 6 on a fat-tree) share one layout, plus the
//!   [`WaterfillInstance`] over exactly the links any assignment can
//!   use. Applying an assignment is an O(flows) table walk.
//! * [`EvalScratch`] — the per-worker scratch: the water-filling buffers
//!   plus reusable sort/cover buffers for objectives. One scratch per
//!   block worker keeps evaluation allocation-free in the steady state
//!   without any sharing between threads.
//!
//! Construction is timed under the `search.compile` telemetry timer —
//! the cost is paid once per search instead of once per evaluated
//! routing.
//!
//! Finiteness of fabric links is a construction-time invariant here:
//! every link of every compiled path must be finite (true of every
//! [`Fabric`] implementation in `clos-net`), checked once in
//! [`CompiledInstance::new`] rather than re-`expect`ed on each of the
//! thousands of per-leaf allocations.

use clos_fairness::{WaterfillInstance, WaterfillScratch};
use clos_net::{Fabric, Flow, LinkId};
use clos_rational::Rational;
use clos_telemetry::timers;

/// Dense incidence tables for one `(fabric, flow collection)` search
/// instance, built once and shared read-only by every worker.
///
/// # Examples
///
/// ```
/// use clos_core::compiled::{CompiledInstance, EvalScratch};
/// use clos_net::{ClosNetwork, Flow};
/// use clos_rational::Rational;
///
/// let clos = ClosNetwork::standard(2);
/// let flows = vec![
///     Flow::new(clos.source(0, 0), clos.destination(2, 0)),
///     Flow::new(clos.source(0, 1), clos.destination(2, 1)),
/// ];
/// let compiled = CompiledInstance::new(&clos, &flows);
/// let mut scratch = EvalScratch::default();
/// // Distinct middles: each flow gets a private fabric path.
/// compiled.evaluate(&mut scratch, &[0, 1]);
/// assert_eq!(scratch.rates(), &[Rational::ONE, Rational::ONE]);
/// // Same middle: the shared uplink halves both (same scratch, no
/// // reallocation).
/// compiled.evaluate(&mut scratch, &[0, 0]);
/// assert_eq!(scratch.rates(), &[Rational::new(1, 2); 2]);
/// ```
#[derive(Clone, Debug)]
pub struct CompiledInstance {
    class_count: usize,
    flow_count: usize,
    /// Water-filling over exactly the finite links some assignment uses.
    waterfill: WaterfillInstance<Rational>,
    /// CSR path table: the dense link indices of flow `i`'s path via
    /// class `c` sit at `links[offsets[e]..offsets[e + 1]]` with
    /// `e = i * class_count + c`, in path order.
    links: Vec<usize>,
    offsets: Vec<usize>,
}

impl CompiledInstance {
    /// Compiles the incidence tables for `flows` in `fabric`.
    ///
    /// # Panics
    ///
    /// Panics if a flow endpoint is not a source/destination of
    /// `fabric`, or if some path link is not finite — impossible for the
    /// fabrics of `clos-net`, whose links all carry finite capacities;
    /// checking it here (once) is what lets every later
    /// [`Self::evaluate`] run unchecked.
    #[must_use]
    pub fn new<F: Fabric>(fabric: &F, flows: &[Flow]) -> CompiledInstance {
        let _timer = timers::SEARCH_COMPILE.scope();
        let _span = clos_telemetry::span("search.compile");
        let n = fabric.class_count();
        let len_bound = fabric.max_path_len();
        let mut used: Vec<LinkId> = Vec::with_capacity(flows.len() * n * len_bound);
        for &f in flows {
            for c in 0..n {
                fabric.append_links_via(f, c, &mut used);
            }
        }
        used.sort_unstable();
        used.dedup();
        let waterfill = WaterfillInstance::compile_subset(fabric.network(), &used);
        let mut links = Vec::with_capacity(flows.len() * n * len_bound);
        let mut offsets = Vec::with_capacity(flows.len() * n + 1);
        offsets.push(0);
        let mut path: Vec<LinkId> = Vec::with_capacity(len_bound);
        for &f in flows {
            for c in 0..n {
                path.clear();
                fabric.append_links_via(f, c, &mut path);
                links.extend(
                    path.iter()
                        .map(|&l| waterfill.dense_index(l).expect("fabric links are finite")),
                );
                offsets.push(links.len());
            }
        }
        CompiledInstance {
            class_count: n,
            flow_count: flows.len(),
            waterfill,
            links,
            offsets,
        }
    }

    /// Number of routing classes (valid assignment values are `0..n`).
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.class_count
    }

    /// Number of compiled flows (valid assignment length).
    #[must_use]
    pub fn flow_count(&self) -> usize {
        self.flow_count
    }

    /// The compiled water-filling instance (for mapping dense link
    /// indices back to [`LinkId`]s).
    #[must_use]
    pub fn waterfill(&self) -> &WaterfillInstance<Rational> {
        &self.waterfill
    }

    /// Dense link indices of flow `i`'s candidate path via `class`, in
    /// path order (the CSR row behind [`Self::evaluate`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `class` is out of range.
    #[must_use]
    pub fn path_links(&self, i: usize, class: usize) -> &[usize] {
        assert!(i < self.flow_count, "flow index out of range");
        assert!(class < self.class_count, "routing class out of range");
        let e = i * self.class_count + class;
        &self.links[self.offsets[e]..self.offsets[e + 1]]
    }

    /// Water-fills the routing selecting `assignment[i]` as flow `i`'s
    /// routing class; `assignment` may cover just a prefix of the flow
    /// collection. Rates (and trace) are readable from `scratch`
    /// afterwards; no heap allocation once the scratch is warm.
    ///
    /// # Panics
    ///
    /// Panics if `assignment` is longer than the flow collection or
    /// assigns a class `>= class_count()`.
    pub fn evaluate(&self, scratch: &mut EvalScratch, assignment: &[usize]) {
        assert!(assignment.len() <= self.flow_count, "assignment too long");
        let wf = &mut scratch.waterfill;
        wf.begin();
        for (i, &c) in assignment.iter().enumerate() {
            debug_assert!(c < self.class_count, "routing class out of range");
            let e = i * self.class_count + c;
            wf.push_flow(&self.links[self.offsets[e]..self.offsets[e + 1]]);
        }
        self.waterfill.run(wf);
    }
}

/// Per-worker evaluation scratch: water-filling buffers plus reusable
/// objective buffers, all cleared-not-reallocated between evaluations.
#[derive(Clone, Debug, Default)]
pub struct EvalScratch {
    /// The water-filling state of the latest [`CompiledInstance::evaluate`].
    waterfill: WaterfillScratch<Rational>,
    /// Reusable buffer for sorted-key comparisons ([`Self::sorted_by`]).
    sort_buf: Vec<Rational>,
    /// Reusable fabric-uplink buffer for cover bounds.
    up: Vec<LinkId>,
    /// Reusable fabric-downlink buffer for cover bounds.
    down: Vec<LinkId>,
}

impl EvalScratch {
    /// Per-flow rates of the latest evaluation, in flow order.
    #[must_use]
    pub fn rates(&self) -> &[Rational] {
        self.waterfill.rates()
    }

    /// Fills the internal sort buffer from the latest evaluation's rates
    /// via `fill`, sorts it ascending, and returns it — the borrow-based
    /// equivalent of building a
    /// [`SortedRates`](clos_fairness::SortedRates) key, for hot-path
    /// comparisons that must not allocate. The slice stays valid until
    /// the next call on this scratch.
    pub fn sorted_by(&mut self, fill: impl FnOnce(&[Rational], &mut Vec<Rational>)) -> &[Rational] {
        self.sort_buf.clear();
        fill(self.waterfill.rates(), &mut self.sort_buf);
        self.sort_buf.sort_unstable();
        &self.sort_buf
    }

    /// Borrows the two reusable [`LinkId`] buffers (cleared by the
    /// caller), used by cover bounds to dedup fabric links in place.
    pub(crate) fn link_buffers(&mut self) -> (&mut Vec<LinkId>, &mut Vec<LinkId>) {
        (&mut self.up, &mut self.down)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clos_fairness::max_min_fair;
    use clos_net::{ClosNetwork, Routing};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn evaluate_matches_routing_based_waterfill() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 1), clos.destination(0, 1)),
            Flow::new(clos.source(0, 1), clos.destination(1, 0)),
            Flow::new(clos.source(1, 0), clos.destination(1, 0)),
            Flow::new(clos.source(0, 0), clos.destination(0, 0)),
        ];
        let compiled = CompiledInstance::new(&clos, &flows);
        let mut scratch = EvalScratch::default();
        for assignment in [[0, 0, 0, 0], [0, 1, 0, 1], [1, 1, 0, 0], [0, 1, 1, 0]] {
            compiled.evaluate(&mut scratch, &assignment);
            let routing = Routing::new(
                flows
                    .iter()
                    .zip(assignment)
                    .map(|(&f, m)| clos.path_via(f, m))
                    .collect(),
            );
            let fresh = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
            assert_eq!(scratch.rates(), fresh.rates(), "assignment {assignment:?}");
        }
    }

    #[test]
    fn prefix_evaluation_covers_only_assigned_flows() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
        ];
        let compiled = CompiledInstance::new(&clos, &flows);
        assert_eq!(compiled.flow_count(), 2);
        assert_eq!(compiled.class_count(), 2);
        let mut scratch = EvalScratch::default();
        compiled.evaluate(&mut scratch, &[0]);
        assert_eq!(scratch.rates(), &[Rational::ONE]);
    }

    #[test]
    fn sorted_by_reuses_one_buffer() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
        ];
        let compiled = CompiledInstance::new(&clos, &flows);
        let mut scratch = EvalScratch::default();
        compiled.evaluate(&mut scratch, &[0, 0]);
        let doubled: Vec<Rational> = {
            let s = scratch.sorted_by(|rates, buf| {
                buf.extend(rates.iter().map(|&x| x + x));
            });
            s.to_vec()
        };
        assert_eq!(doubled, vec![Rational::ONE, Rational::ONE]);
        let padded_len = scratch
            .sorted_by(|rates, buf| {
                buf.extend_from_slice(rates);
                buf.resize(5, r(7, 1));
            })
            .len();
        assert_eq!(padded_len, 5);
    }

    #[test]
    #[should_panic(expected = "assignment too long")]
    fn overlong_assignment_rejected() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![Flow::new(clos.source(0, 0), clos.destination(2, 0))];
        let compiled = CompiledInstance::new(&clos, &flows);
        let mut scratch = EvalScratch::default();
        compiled.evaluate(&mut scratch, &[0, 0]);
    }
}
