//! Analysis of the macro-switch abstraction: max-min fairness, maximum
//! throughput, and the price of fairness (§3).

use clos_fairness::{max_min_fair, Allocation};
use clos_graph::{maximum_matching, Matching};
use clos_net::{Flow, MacroSwitch};
use clos_rational::Rational;

use crate::graphs::ms_flow_multigraph;

/// Computes the (unique) max-min fair allocation `a^MmF` in a macro-switch.
///
/// The macro-switch has a single routing, so congestion control determines
/// the allocation completely; its sorted vector dominates every feasible
/// allocation of the corresponding Clos network (§2.3).
///
/// # Panics
///
/// Panics if a flow endpoint is not a source/destination of `ms`.
///
/// # Examples
///
/// ```
/// use clos_core::macro_switch::macro_max_min;
/// use clos_net::{Flow, MacroSwitch};
/// use clos_rational::Rational;
///
/// let ms = MacroSwitch::standard(1);
/// let flows = [
///     Flow::new(ms.source(0, 0), ms.destination(0, 0)),
///     Flow::new(ms.source(1, 0), ms.destination(0, 0)),
/// ];
/// let a = macro_max_min(&ms, &flows);
/// assert_eq!(a.rates(), &[Rational::new(1, 2), Rational::new(1, 2)]);
/// ```
#[must_use]
pub fn macro_max_min(ms: &MacroSwitch, flows: &[Flow]) -> Allocation<Rational> {
    let routing = ms.routing(flows);
    max_min_fair::<Rational>(ms.network(), flows, &routing)
        .expect("macro-switch host links are finite")
}

/// A maximum-throughput allocation `a^MT` in a macro-switch, built from a
/// maximum matching per Lemma 3.2.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MaxThroughput {
    /// The allocation: rate 1 on matched flows, 0 elsewhere.
    pub allocation: Allocation<Rational>,
    /// The underlying maximum matching of `G^MS` (edge indices = flow
    /// positions).
    pub matching: Matching,
}

impl MaxThroughput {
    /// Returns `T^MT`, the maximum throughput across the macro-switch
    /// (equal to the matching size by Lemma 3.2).
    #[must_use]
    pub fn throughput(&self) -> Rational {
        Rational::from_integer(self.matching.len() as i128)
    }
}

/// Computes a maximum-throughput allocation across a macro-switch
/// (Definition 3.1) via bipartite maximum matching (Lemma 3.2).
///
/// From the admission-control viewpoint, matched flows are accepted and
/// transmitted at link capacity; unmatched flows are rejected.
///
/// # Panics
///
/// Panics if a flow endpoint is not a source/destination of `ms`.
///
/// # Examples
///
/// The Figure 2a gadget: both type-1 flows accepted, the crossing type-2
/// flow rejected, `T^MT = 2`:
///
/// ```
/// use clos_core::macro_switch::max_throughput;
/// use clos_net::{Flow, MacroSwitch};
/// use clos_rational::Rational;
///
/// let ms = MacroSwitch::standard(1);
/// let flows = [
///     Flow::new(ms.source(0, 0), ms.destination(0, 0)),
///     Flow::new(ms.source(1, 0), ms.destination(1, 0)),
///     Flow::new(ms.source(1, 0), ms.destination(0, 0)),
/// ];
/// let mt = max_throughput(&ms, &flows);
/// assert_eq!(mt.throughput(), Rational::TWO);
/// assert_eq!(mt.allocation.rates()[2], Rational::ZERO);
/// ```
#[must_use]
pub fn max_throughput(ms: &MacroSwitch, flows: &[Flow]) -> MaxThroughput {
    let g = ms_flow_multigraph(ms, flows);
    let matching = maximum_matching(&g);
    let rates = (0..flows.len())
        .map(|i| {
            if matching.contains(i) {
                Rational::ONE
            } else {
                Rational::ZERO
            }
        })
        .collect();
    MaxThroughput {
        allocation: Allocation::from_rates(rates),
        matching,
    }
}

/// The price of fairness of a flow collection in a macro-switch: the
/// throughputs of the max-min fair and maximum-throughput allocations.
///
/// Theorem 3.4 bounds the ratio: `T^MmF ≥ ½ T^MT` for every collection, and
/// the bound is approached by the adversarial collections of
/// [`theorem_3_4`].
///
/// [`theorem_3_4`]: crate::constructions::theorem_3_4
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PriceOfFairness {
    /// `T^MmF`: throughput of the max-min fair allocation.
    pub t_max_min: Rational,
    /// `T^MT`: the maximum throughput (matching size).
    pub t_max_throughput: Rational,
}

impl PriceOfFairness {
    /// Returns `T^MmF / T^MT`, or `None` for an empty collection
    /// (`T^MT = 0`).
    ///
    /// Theorem 3.4 guarantees the value is in `[1/2, 1]`.
    #[must_use]
    pub fn ratio(&self) -> Option<Rational> {
        if self.t_max_throughput.is_zero() {
            None
        } else {
            Some(self.t_max_min / self.t_max_throughput)
        }
    }
}

/// Computes the price of fairness for a flow collection in a macro-switch
/// (§3, research question Q1).
///
/// # Panics
///
/// Panics if a flow endpoint is not a source/destination of `ms`.
///
/// # Examples
///
/// ```
/// use clos_core::macro_switch::price_of_fairness;
/// use clos_net::{Flow, MacroSwitch};
/// use clos_rational::Rational;
///
/// let ms = MacroSwitch::standard(1);
/// let flows = [
///     Flow::new(ms.source(0, 0), ms.destination(0, 0)),
///     Flow::new(ms.source(1, 0), ms.destination(1, 0)),
///     Flow::new(ms.source(1, 0), ms.destination(0, 0)),
/// ];
/// let pof = price_of_fairness(&ms, &flows);
/// assert_eq!(pof.t_max_min, Rational::new(3, 2));
/// assert_eq!(pof.t_max_throughput, Rational::TWO);
/// assert_eq!(pof.ratio(), Some(Rational::new(3, 4)));
/// ```
#[must_use]
pub fn price_of_fairness(ms: &MacroSwitch, flows: &[Flow]) -> PriceOfFairness {
    PriceOfFairness {
        t_max_min: macro_max_min(ms, flows).throughput(),
        t_max_throughput: max_throughput(ms, flows).throughput(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clos_fairness::{is_feasible, verify_bottleneck_property};

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn example_2_3_macro_rates() {
        let ms = MacroSwitch::standard(2);
        let flows = [
            Flow::new(ms.source(0, 1), ms.destination(0, 1)),
            Flow::new(ms.source(0, 1), ms.destination(1, 0)),
            Flow::new(ms.source(0, 1), ms.destination(1, 1)),
            Flow::new(ms.source(1, 0), ms.destination(1, 0)),
            Flow::new(ms.source(1, 1), ms.destination(1, 1)),
            Flow::new(ms.source(0, 0), ms.destination(0, 0)),
        ];
        let a = macro_max_min(&ms, &flows);
        assert_eq!(
            a.rates(),
            &[r(1, 3), r(1, 3), r(1, 3), r(2, 3), r(2, 3), Rational::ONE]
        );
    }

    #[test]
    fn max_throughput_is_feasible_but_not_fair() {
        let ms = MacroSwitch::standard(1);
        let flows = [
            Flow::new(ms.source(0, 0), ms.destination(0, 0)),
            Flow::new(ms.source(1, 0), ms.destination(1, 0)),
            Flow::new(ms.source(1, 0), ms.destination(0, 0)),
        ];
        let mt = max_throughput(&ms, &flows);
        let routing = ms.routing(&flows);
        assert!(is_feasible(ms.network(), &flows, &routing, &mt.allocation).is_ok());
        assert!(verify_bottleneck_property(
            ms.network(),
            &flows,
            &routing,
            &mt.allocation,
            Rational::ZERO
        )
        .is_err());
    }

    #[test]
    fn matching_respects_parallel_flows() {
        let ms = MacroSwitch::standard(1);
        // Five parallel flows on one pair: T^MT = 1.
        let flows = vec![Flow::new(ms.source(0, 0), ms.destination(1, 0)); 5];
        let mt = max_throughput(&ms, &flows);
        assert_eq!(mt.throughput(), Rational::ONE);
        let ones = mt
            .allocation
            .rates()
            .iter()
            .filter(|&&x| x == Rational::ONE)
            .count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn price_of_fairness_one_for_permutation_traffic() {
        // A permutation (one flow per source and destination) loses nothing
        // to fairness: every flow gets rate 1 either way.
        let ms = MacroSwitch::standard(2);
        let mut flows = Vec::new();
        for i in 0..4 {
            for j in 0..2 {
                flows.push(Flow::new(ms.source(i, j), ms.destination(3 - i, 1 - j)));
            }
        }
        let pof = price_of_fairness(&ms, &flows);
        assert_eq!(pof.t_max_min, Rational::from_integer(8));
        assert_eq!(pof.t_max_throughput, Rational::from_integer(8));
        assert_eq!(pof.ratio(), Some(Rational::ONE));
    }

    #[test]
    fn price_of_fairness_empty_collection() {
        let ms = MacroSwitch::standard(1);
        let pof = price_of_fairness(&ms, &[]);
        assert_eq!(pof.ratio(), None);
    }

    #[test]
    fn theorem_3_4_lower_bound_on_small_cases() {
        // T^MmF >= T^MT / 2 on a handful of handcrafted collections.
        let ms = MacroSwitch::standard(2);
        let collections: Vec<Vec<Flow>> = vec![
            vec![Flow::new(ms.source(0, 0), ms.destination(0, 0))],
            vec![
                Flow::new(ms.source(0, 0), ms.destination(0, 0)),
                Flow::new(ms.source(0, 0), ms.destination(0, 1)),
                Flow::new(ms.source(0, 1), ms.destination(0, 1)),
                Flow::new(ms.source(1, 0), ms.destination(0, 0)),
            ],
            (0..8)
                .map(|k| Flow::new(ms.source(k % 4, 0), ms.destination((k + 1) % 4, k % 2)))
                .collect(),
        ];
        for flows in collections {
            let pof = price_of_fairness(&ms, &flows);
            assert!(pof.t_max_min * Rational::TWO >= pof.t_max_throughput);
            let ratio = pof.ratio().unwrap();
            assert!(ratio >= r(1, 2) && ratio <= Rational::ONE);
        }
    }
}
