//! Soundness of the exhaustive search's symmetry reductions: the
//! canonical enumeration must find the same optima as raw brute force
//! over all `n^F` routings.

use std::collections::BTreeSet;

use clos_core::objectives::{
    for_each_canonical_assignment, search_lex_max_min, search_throughput_max_min,
};
use clos_fairness::max_min_fair;
use clos_net::{ClosNetwork, Flow, Routing};
use clos_rational::Rational;
use proptest::prelude::*;

/// Brute force over every middle assignment, no symmetry reduction.
fn brute_force_optima(
    clos: &ClosNetwork,
    flows: &[Flow],
) -> (clos_fairness::SortedRates<Rational>, Rational) {
    let n = clos.middle_count();
    let f = flows.len();
    assert!(n.pow(f as u32) <= 1 << 16, "brute force kept tiny");
    let mut best_sorted: Option<clos_fairness::SortedRates<Rational>> = None;
    let mut best_throughput: Option<Rational> = None;
    let mut assignment = vec![0usize; f];
    loop {
        let routing: Routing = flows
            .iter()
            .zip(&assignment)
            .map(|(&fl, &m)| clos.path_via(fl, m))
            .collect();
        let alloc = max_min_fair::<Rational>(clos.network(), flows, &routing).unwrap();
        let sorted = alloc.sorted();
        if best_sorted.as_ref().is_none_or(|b| sorted > *b) {
            best_sorted = Some(sorted);
        }
        let t = alloc.throughput();
        if best_throughput.is_none_or(|b| t > b) {
            best_throughput = Some(t);
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == f {
                return (best_sorted.unwrap(), best_throughput.unwrap());
            }
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// All permutations of `0..n` (n is tiny here).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for slot in 0..=p.len() {
            let mut q = p.clone();
            q.insert(slot, n - 1);
            out.push(q);
        }
    }
    out
}

/// The lexicographically least element of `assignment`'s orbit under
/// middle-switch relabeling and identical-flow permutation. `groups`
/// lists, per identical-flow class, the positions holding those flows.
fn lex_min_orbit_element(assignment: &[usize], n: usize, groups: &[Vec<usize>]) -> Vec<usize> {
    let mut best: Option<Vec<usize>> = None;
    for perm in permutations(n) {
        let mut relabeled: Vec<usize> = assignment.iter().map(|&m| perm[m]).collect();
        // Permuting identical flows = freely reordering each group's
        // values; the lex-least arrangement sorts them in position order.
        for group in groups {
            let mut values: Vec<usize> = group.iter().map(|&p| relabeled[p]).collect();
            values.sort_unstable();
            for (&p, v) in group.iter().zip(values) {
                relabeled[p] = v;
            }
        }
        if best.as_ref().is_none_or(|b| relabeled < *b) {
            best = Some(relabeled);
        }
    }
    best.unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Canonical search equals raw brute force on C_2 with up to 7 flows
    /// (including repeated pairs, which exercise the multiset reduction).
    #[test]
    fn canonical_equals_brute_force_c2(
        coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=7)
    ) {
        let clos = ClosNetwork::standard(2);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect();
        let (bf_sorted, bf_throughput) = brute_force_optima(&clos, &flows);
        let (lex, _) = search_lex_max_min(&clos, &flows);
        let (tput, _) = search_throughput_max_min(&clos, &flows);
        prop_assert_eq!(lex.allocation.sorted(), bf_sorted);
        prop_assert_eq!(tput.throughput(), bf_throughput);
    }

    /// Same on C_3 with up to 5 flows (3^5 = 243 raw routings).
    #[test]
    fn canonical_equals_brute_force_c3(
        coords in prop::collection::vec((0..6usize, 0..3usize, 0..6usize, 0..3usize), 1..=5)
    ) {
        let clos = ClosNetwork::standard(3);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect();
        let (bf_sorted, bf_throughput) = brute_force_optima(&clos, &flows);
        let (lex, stats) = search_lex_max_min(&clos, &flows);
        prop_assert_eq!(lex.allocation.sorted(), bf_sorted);
        // And the reduction actually reduced (unless a single flow).
        if flows.len() > 1 {
            prop_assert!(stats.routings_examined < 3u64.pow(flows.len() as u32));
        }
        let (tput, _) = search_throughput_max_min(&clos, &flows);
        prop_assert_eq!(tput.throughput(), bf_throughput);
    }

    /// Orbit coverage of the combined reduction (group-sortedness AND
    /// first-use label canonicalization applied together): every orbit of
    /// the raw `n^F` space keeps its lexicographically least element in
    /// the canonical enumeration, and everything enumerated satisfies
    /// both canonicality constraints.
    ///
    /// The enumeration is deliberately a *superset* of the perfect
    /// one-per-orbit transversal: the two constraints are each exact for
    /// their own subgroup, but their intersection can retain more than
    /// one element of a joint orbit (e.g. `[0,0,1,1]` and `[0,1,1,0]`
    /// with flows 0–2 identical — relabeling then re-sorting maps one to
    /// the other). Soundness only needs coverage; the lex-min element of
    /// every orbit is always kept, so no optimum is lost.
    #[test]
    fn canonical_enumeration_covers_the_lex_min_of_every_orbit(
        coords in prop::collection::vec((0..6usize, 0..3usize, 0..6usize, 0..3usize), 1..=4)
    ) {
        let clos = ClosNetwork::standard(3);
        let n = clos.middle_count();
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect();
        // Identical-flow classes by (src, dst).
        let mut classes: std::collections::BTreeMap<_, Vec<usize>> = std::collections::BTreeMap::new();
        for (i, f) in flows.iter().enumerate() {
            classes.entry((f.src(), f.dst())).or_default().push(i);
        }
        let groups: Vec<Vec<usize>> = classes.into_values().collect();

        let mut visited: BTreeSet<Vec<usize>> = BTreeSet::new();
        for_each_canonical_assignment(&clos, &flows, |a| {
            visited.insert(a.to_vec());
        });

        // Everything enumerated is group-sorted and first-use canonical.
        for a in &visited {
            for group in &groups {
                prop_assert!(
                    group.windows(2).all(|w| a[w[0]] <= a[w[1]]),
                    "{:?} is not sorted within group {:?}",
                    a,
                    group
                );
            }
            let mut fresh = 0usize;
            for &m in a {
                prop_assert!(
                    m <= fresh,
                    "{:?} introduces label {} before {}",
                    a,
                    m,
                    fresh
                );
                if m == fresh {
                    fresh += 1;
                }
            }
        }

        // Sweep the raw space with a mixed-radix counter: every orbit's
        // lex-min element must have been enumerated.
        let f = flows.len();
        let mut minima: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut assignment = vec![0usize; f];
        'sweep: loop {
            let canonical = lex_min_orbit_element(&assignment, n, &groups);
            prop_assert!(
                visited.contains(&canonical),
                "orbit of {:?} has lex-min {:?}, missing from the canonical enumeration",
                assignment,
                canonical
            );
            minima.insert(canonical);
            let mut i = 0;
            loop {
                if i == f {
                    break 'sweep;
                }
                assignment[i] += 1;
                if assignment[i] < n {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
        prop_assert!(minima.is_subset(&visited));
    }
}
