//! Soundness of the exhaustive search's symmetry reductions: the
//! canonical enumeration must find the same optima as raw brute force
//! over all `n^F` routings.

use clos_core::objectives::{search_lex_max_min, search_throughput_max_min};
use clos_fairness::max_min_fair;
use clos_net::{ClosNetwork, Flow, Routing};
use clos_rational::Rational;
use proptest::prelude::*;

/// Brute force over every middle assignment, no symmetry reduction.
fn brute_force_optima(
    clos: &ClosNetwork,
    flows: &[Flow],
) -> (clos_fairness::SortedRates<Rational>, Rational) {
    let n = clos.middle_count();
    let f = flows.len();
    assert!(n.pow(f as u32) <= 1 << 16, "brute force kept tiny");
    let mut best_sorted: Option<clos_fairness::SortedRates<Rational>> = None;
    let mut best_throughput: Option<Rational> = None;
    let mut assignment = vec![0usize; f];
    loop {
        let routing: Routing = flows
            .iter()
            .zip(&assignment)
            .map(|(&fl, &m)| clos.path_via(fl, m))
            .collect();
        let alloc = max_min_fair::<Rational>(clos.network(), flows, &routing).unwrap();
        let sorted = alloc.sorted();
        if best_sorted.as_ref().is_none_or(|b| sorted > *b) {
            best_sorted = Some(sorted);
        }
        let t = alloc.throughput();
        if best_throughput.is_none_or(|b| t > b) {
            best_throughput = Some(t);
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == f {
                return (best_sorted.unwrap(), best_throughput.unwrap());
            }
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Canonical search equals raw brute force on C_2 with up to 7 flows
    /// (including repeated pairs, which exercise the multiset reduction).
    #[test]
    fn canonical_equals_brute_force_c2(
        coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=7)
    ) {
        let clos = ClosNetwork::standard(2);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect();
        let (bf_sorted, bf_throughput) = brute_force_optima(&clos, &flows);
        let (lex, _) = search_lex_max_min(&clos, &flows);
        let (tput, _) = search_throughput_max_min(&clos, &flows);
        prop_assert_eq!(lex.allocation.sorted(), bf_sorted);
        prop_assert_eq!(tput.throughput(), bf_throughput);
    }

    /// Same on C_3 with up to 5 flows (3^5 = 243 raw routings).
    #[test]
    fn canonical_equals_brute_force_c3(
        coords in prop::collection::vec((0..6usize, 0..3usize, 0..6usize, 0..3usize), 1..=5)
    ) {
        let clos = ClosNetwork::standard(3);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
            .collect();
        let (bf_sorted, bf_throughput) = brute_force_optima(&clos, &flows);
        let (lex, stats) = search_lex_max_min(&clos, &flows);
        prop_assert_eq!(lex.allocation.sorted(), bf_sorted);
        // And the reduction actually reduced (unless a single flow).
        if flows.len() > 1 {
            prop_assert!(stats.routings_examined < 3u64.pow(flows.len() as u32));
        }
        let (tput, _) = search_throughput_max_min(&clos, &flows);
        prop_assert_eq!(tput.throughput(), bf_throughput);
    }
}
