//! Ground-truth checks for the telemetry counters: the instrumented hot
//! paths must report exactly what the algorithms did.
//!
//! The telemetry registry is global, so every test (including each
//! proptest case) serializes through one mutex, resets the counters, and
//! re-disables telemetry when done.

use std::sync::Mutex;

use clos_core::objectives::{
    for_each_canonical_assignment, search_lex_max_min, search_throughput_max_min,
    search_throughput_max_min_with,
};
use clos_core::search::SearchConfig;
use clos_fairness::max_min_fair_traced;
use clos_net::{ClosNetwork, Flow, Routing};
use clos_rational::Rational;
use clos_telemetry::{counters, set_enabled};
use proptest::prelude::*;

static SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` with telemetry enabled and all counters zeroed, serializing
/// against every other test in this binary.
fn with_telemetry<T>(f: impl FnOnce() -> T) -> T {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    set_enabled(true);
    counters::reset_all();
    let out = f();
    set_enabled(false);
    out
}

fn flows_from_coords(clos: &ClosNetwork, coords: &[(usize, usize, usize, usize)]) -> Vec<Flow> {
    coords
        .iter()
        .map(|&(si, sj, ti, tj)| Flow::new(clos.source(si, sj), clos.destination(ti, tj)))
        .collect()
}

#[test]
fn waterfill_rounds_counter_matches_trace_levels() {
    with_telemetry(|| {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
            Flow::new(clos.source(1, 0), clos.destination(3, 0)),
        ];
        let routing: Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
        let (_, trace) = max_min_fair_traced::<Rational>(clos.network(), &flows, &routing).unwrap();
        assert_eq!(counters::WATERFILL_CALLS.get(), 1);
        assert_eq!(counters::WATERFILL_ROUNDS.get(), trace.levels.len() as u64);
        // Every flow froze against some saturated link.
        assert!(counters::WATERFILL_SATURATIONS.get() >= 1);
    });
}

#[test]
fn enumeration_counter_matches_callback_count() {
    with_telemetry(|| {
        let clos = ClosNetwork::standard(3);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(3, 0)),
            Flow::new(clos.source(0, 1), clos.destination(3, 1)),
            Flow::new(clos.source(1, 0), clos.destination(4, 0)),
        ];
        let mut callbacks = 0u64;
        for_each_canonical_assignment(&clos, &flows, |_| callbacks += 1);
        assert_eq!(counters::SEARCH_ASSIGNMENTS.get(), callbacks);
        assert!(callbacks > 0);
    });
}

#[test]
fn search_stats_agree_with_counters() {
    with_telemetry(|| {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 1)),
            Flow::new(clos.source(1, 0), clos.destination(3, 0)),
        ];
        // The size of the canonical enumeration, for comparison below.
        let mut enumerated = 0u64;
        for_each_canonical_assignment(&clos, &flows, |_| enumerated += 1);

        counters::reset_all();
        let (_, lex_stats) = search_lex_max_min(&clos, &flows);
        assert_eq!(counters::SEARCH_RUNS.get(), 1);
        assert_eq!(
            counters::SEARCH_ASSIGNMENTS.get(),
            lex_stats.routings_examined
        );
        assert_eq!(counters::SEARCH_IMPROVEMENTS.get(), lex_stats.improvements);
        assert_eq!(counters::SEARCH_PRUNED.get(), lex_stats.pruned);
        assert!(lex_stats.improvements >= 1);
        assert!(lex_stats.improvements <= lex_stats.routings_examined);
        // Pruning only ever shrinks the evaluated set.
        assert!(lex_stats.routings_examined <= enumerated);

        counters::reset_all();
        let (_, tput_stats) = search_throughput_max_min(&clos, &flows);
        assert_eq!(
            counters::SEARCH_ASSIGNMENTS.get(),
            tput_stats.routings_examined
        );
        assert_eq!(counters::SEARCH_IMPROVEMENTS.get(), tput_stats.improvements);
        assert_eq!(counters::SEARCH_PRUNED.get(), tput_stats.pruned);
        // Pruning is objective-specific, so the two objectives may examine
        // different subsets; both are bounded by the full enumeration.
        assert!(tput_stats.routings_examined <= enumerated);

        // With pruning disabled, the engine evaluates exactly the
        // canonical enumeration, for either objective.
        counters::reset_all();
        let no_prune = SearchConfig {
            threads: None,
            no_prune: true,
            trace_sample: None,
        };
        let (_, exhaustive) = search_throughput_max_min_with(&clos, &flows, no_prune);
        assert_eq!(exhaustive.routings_examined, enumerated);
        assert_eq!(exhaustive.pruned, 0);
        assert_eq!(counters::SEARCH_PRUNED.get(), 0);
    });
}

#[test]
fn counters_stay_zero_while_disabled() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    set_enabled(false);
    counters::reset_all();
    let clos = ClosNetwork::standard(2);
    let flows = vec![
        Flow::new(clos.source(0, 0), clos.destination(2, 0)),
        Flow::new(clos.source(1, 0), clos.destination(3, 0)),
    ];
    let _ = search_lex_max_min(&clos, &flows);
    for counter in counters::all() {
        assert_eq!(
            counter.get(),
            0,
            "counter {} moved while disabled",
            counter.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The enumeration counter equals the callback count on random
    /// collections (including repeated pairs).
    #[test]
    fn prop_enumeration_counter_exact(
        coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=6)
    ) {
        let clos = ClosNetwork::standard(2);
        let flows = flows_from_coords(&clos, &coords);
        let (delta, callbacks) = with_telemetry(|| {
            let mut callbacks = 0u64;
            for_each_canonical_assignment(&clos, &flows, |_| callbacks += 1);
            (counters::SEARCH_ASSIGNMENTS.get(), callbacks)
        });
        prop_assert_eq!(delta, callbacks);
    }

    /// The waterfill round counter equals the trace's fill-level count on
    /// random collections and routings.
    #[test]
    fn prop_waterfill_rounds_exact(
        coords in prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=6),
        middles in prop::collection::vec(0..2usize, 6)
    ) {
        let clos = ClosNetwork::standard(2);
        let flows = flows_from_coords(&clos, &coords);
        let routing: Routing = flows
            .iter()
            .zip(&middles)
            .map(|(&f, &m)| clos.path_via(f, m))
            .collect();
        let (rounds, levels) = with_telemetry(|| {
            let (_, trace) =
                max_min_fair_traced::<Rational>(clos.network(), &flows, &routing).unwrap();
            (counters::WATERFILL_ROUNDS.get(), trace.levels.len() as u64)
        });
        prop_assert_eq!(rounds, levels);
    }
}
