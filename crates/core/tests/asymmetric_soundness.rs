//! Orbit coverage of the capacity-class-aware symmetry reduction on
//! *asymmetric* fabrics.
//!
//! The historical reduction assumed "all links have equal capacity" and
//! silently enumerated a wrong orbit set on anything else — on an
//! asymmetric fabric, relabeling middle switches is only
//! allocation-preserving *within* a capacity equivalence class. These
//! proptests degrade random fabric links of `C_3`/`C_4` (including to
//! zero, the failure-model limit) and check the canonical enumeration
//! against raw brute force over all `n^F` assignments:
//!
//! * the optimal lex-max-min key and the optimal throughput reached by
//!   canonical assignments equal the brute-force optima, under both
//!   exact [`Rational`] and float [`TotalF64`] water-filling;
//! * the search engine (which prunes and parallelizes over the same
//!   canonical tree) returns winners attaining those optima at 1 and 4
//!   threads;
//! * every canonical assignment is group-sorted and first-use canonical
//!   *per capacity class* of the degraded fabric.

use std::collections::BTreeMap;

use clos_core::objectives::for_each_canonical_assignment;
use clos_core::search::{run_search, LexMaxMin, Problem, SearchConfig, ThroughputMaxMin};
use clos_fairness::{max_min_fair, SortedRates};
use clos_net::{Capacity, CapacityMap, ClosNetwork, Flow, Routing};
use clos_rational::{Rational, Scalar, TotalF64};
use proptest::prelude::*;

/// One raw degradation draw: up/down side, ToR, middle, and a capacity
/// choice from `{0, 1/4, 1/2, 2}` (moduli applied at build time).
type Degradation = (bool, usize, usize, u8);

fn degraded_clos(n: usize, degradations: &[Degradation]) -> ClosNetwork {
    let base = ClosNetwork::standard(n);
    let mut overlay = CapacityMap::new();
    for &(up, tor, middle, cap) in degradations {
        let link = if up {
            base.uplink(tor % base.tor_count(), middle % n)
        } else {
            base.downlink(middle % n, tor % base.tor_count())
        };
        let capacity = match cap % 4 {
            0 => Rational::ZERO,
            1 => Rational::new(1, 4),
            2 => Rational::new(1, 2),
            _ => Rational::TWO,
        };
        overlay.insert(link, Capacity::finite_value(capacity));
    }
    base.with_capacities(&overlay)
}

fn flows_from_coords(clos: &ClosNetwork, coords: &[(usize, usize, usize, usize)]) -> Vec<Flow> {
    let tors = clos.tor_count();
    let hosts = clos.hosts_per_tor();
    coords
        .iter()
        .map(|&(st, sh, dt, dh)| {
            Flow::new(
                clos.source(st % tors, sh % hosts),
                clos.destination(dt % tors, dh % hosts),
            )
        })
        .collect()
}

fn routing_via(clos: &ClosNetwork, flows: &[Flow], assignment: &[usize]) -> Routing {
    Routing::new(
        flows
            .iter()
            .zip(assignment)
            .map(|(&f, &m)| clos.path_via(f, m))
            .collect(),
    )
}

/// Raw brute force over all `n^F` assignments under scalar `S`: the
/// best (first-wins) lex-max-min sorted key and the best throughput.
fn brute_force_optima<S: Scalar>(clos: &ClosNetwork, flows: &[Flow]) -> (SortedRates<S>, S) {
    let n = clos.middle_count();
    assert!(
        n.pow(flows.len() as u32) <= 1 << 12,
        "brute force too large"
    );
    let mut best_lex: Option<SortedRates<S>> = None;
    let mut best_tput: Option<S> = None;
    let mut assignment = vec![0usize; flows.len()];
    loop {
        let routing = routing_via(clos, flows, &assignment);
        let alloc =
            max_min_fair::<S>(clos.network(), flows, &routing).expect("Clos links are finite");
        let lex = alloc.sorted();
        let tput = alloc.throughput();
        if best_lex.as_ref().is_none_or(|b| lex > *b) {
            best_lex = Some(lex);
        }
        if best_tput.is_none_or(|b| tput > b) {
            best_tput = Some(tput);
        }
        // Mixed-radix increment; most-significant at index 0 so the scan
        // is lexicographic.
        let mut i = flows.len();
        loop {
            if i == 0 {
                return (best_lex.unwrap(), best_tput.unwrap());
            }
            i -= 1;
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
        }
    }
}

/// The canonical enumeration's optima under scalar `S`, via the same
/// allocating path brute force uses (so the comparison is exact per
/// scalar, not routed through `Rational`).
fn canonical_optima<S: Scalar>(clos: &ClosNetwork, flows: &[Flow]) -> (SortedRates<S>, S) {
    let mut best_lex: Option<SortedRates<S>> = None;
    let mut best_tput: Option<S> = None;
    let mut canonical_count = 0usize;
    for_each_canonical_assignment(clos, flows, |assignment| {
        canonical_count += 1;
        let routing = routing_via(clos, flows, assignment);
        let alloc =
            max_min_fair::<S>(clos.network(), flows, &routing).expect("Clos links are finite");
        let lex = alloc.sorted();
        let tput = alloc.throughput();
        if best_lex.as_ref().is_none_or(|b| lex > *b) {
            best_lex = Some(lex);
        }
        if best_tput.is_none_or(|b| tput > b) {
            best_tput = Some(tput);
        }
    });
    assert!(canonical_count > 0, "enumeration emitted no assignment");
    (best_lex.unwrap(), best_tput.unwrap())
}

/// Per-middle capacity signature over the (possibly degraded) fabric,
/// recomputed independently of the engine's internal classes.
fn capacity_classes(clos: &ClosNetwork) -> Vec<Vec<usize>> {
    let mut classes: Vec<(Vec<Capacity>, Vec<usize>)> = Vec::new();
    for m in 0..clos.middle_count() {
        let sig: Vec<Capacity> = (0..clos.tor_count())
            .map(|t| clos.network().link(clos.uplink(t, m)).capacity())
            .chain(
                (0..clos.tor_count()).map(|t| clos.network().link(clos.downlink(m, t)).capacity()),
            )
            .collect();
        match classes.iter_mut().find(|(s, _)| *s == sig) {
            Some((_, members)) => members.push(m),
            None => classes.push((sig, vec![m])),
        }
    }
    classes.into_iter().map(|(_, members)| members).collect()
}

/// Checks every canonical assignment is group-sorted and first-use
/// canonical per capacity class.
fn check_canonical_constraints(clos: &ClosNetwork, flows: &[Flow]) {
    let classes = capacity_classes(clos);
    let mut class_of = vec![0usize; clos.middle_count()];
    let mut rank_of = vec![0usize; clos.middle_count()];
    for (c, members) in classes.iter().enumerate() {
        for (rank, &m) in members.iter().enumerate() {
            class_of[m] = c;
            rank_of[m] = rank;
        }
    }
    for_each_canonical_assignment(clos, flows, |assignment| {
        // Group-sortedness: non-decreasing within identical flows.
        let mut last: BTreeMap<(clos_net::NodeId, clos_net::NodeId), usize> = BTreeMap::new();
        for (i, f) in flows.iter().enumerate() {
            if let Some(prev) = last.insert((f.src(), f.dst()), i) {
                assert!(
                    assignment[prev] <= assignment[i],
                    "group-sort violated at {assignment:?}"
                );
            }
        }
        // Per-class first use: the j-th distinct member of class c to
        // appear must be rank j of class c.
        let mut used = vec![0usize; classes.len()];
        for &m in assignment {
            let c = class_of[m];
            assert!(
                rank_of[m] <= used[c],
                "class {c} first-use violated at {assignment:?}"
            );
            if rank_of[m] == used[c] {
                used[c] += 1;
            }
        }
    });
}

fn check_asymmetric_instance(
    n: usize,
    degradations: &[Degradation],
    coords: &[(usize, usize, usize, usize)],
) {
    let clos = degraded_clos(n, degradations);
    let flows = flows_from_coords(&clos, coords);

    check_canonical_constraints(&clos, &flows);

    // Both scalars: canonical enumeration reaches the brute-force optima.
    let (brute_lex_r, brute_tput_r) = brute_force_optima::<Rational>(&clos, &flows);
    let (canon_lex_r, canon_tput_r) = canonical_optima::<Rational>(&clos, &flows);
    assert_eq!(brute_lex_r, canon_lex_r, "Rational lex optimum diverged");
    assert_eq!(brute_tput_r, canon_tput_r, "Rational throughput diverged");
    let (brute_lex_f, brute_tput_f) = brute_force_optima::<TotalF64>(&clos, &flows);
    let (canon_lex_f, canon_tput_f) = canonical_optima::<TotalF64>(&clos, &flows);
    assert_eq!(brute_lex_f, canon_lex_f, "TotalF64 lex optimum diverged");
    assert_eq!(brute_tput_f, canon_tput_f, "TotalF64 throughput diverged");

    // The pruning, parallel engine agrees at 1 and 4 threads.
    let problem = Problem::new(&clos, &flows);
    for threads in [1usize, 4] {
        let cfg = SearchConfig {
            threads: Some(threads),
            ..SearchConfig::default()
        };
        let (lex_win, _) = run_search(&clos, &flows, &LexMaxMin, cfg);
        let lex_alloc = problem.prefix_allocation(&lex_win);
        assert_eq!(
            lex_alloc.sorted(),
            brute_lex_r,
            "engine lex winner suboptimal at {threads} threads"
        );
        let (tput_win, _) = run_search(&clos, &flows, &ThroughputMaxMin, cfg);
        let tput_alloc = problem.prefix_allocation(&tput_win);
        assert_eq!(
            tput_alloc.throughput(),
            brute_tput_r,
            "engine throughput winner suboptimal at {threads} threads"
        );
    }
}

/// The seeded-failure shape the canonical bug came from: a removed
/// middle (all links zero) plus one degraded link. Deterministic, so
/// the regression is pinned even without proptest.
#[test]
fn removed_middle_plus_degraded_link_fixed_instance() {
    check_asymmetric_instance(
        3,
        &[
            (true, 0, 1, 0),
            (true, 1, 1, 0),
            (true, 2, 1, 0),
            (true, 3, 1, 0),
            (true, 4, 1, 0),
            (true, 5, 1, 0),
            (false, 0, 1, 0),
            (false, 1, 1, 0),
            (false, 2, 1, 0),
            (false, 3, 1, 0),
            (false, 4, 1, 0),
            (false, 5, 1, 0),
            (true, 0, 2, 2),
        ],
        &[(0, 0, 1, 0), (0, 1, 1, 1), (1, 0, 0, 0), (0, 0, 1, 0)],
    );
}

/// A hand-sized witness that the *old* uniform-only reduction was
/// wrong: with middle 0's links degraded, the best routing may use
/// only middle 1 (or 2), which first-use canonicalization over a
/// single class would have canonicalized away. The class-aware
/// enumeration must still find the true optimum.
#[test]
fn optimum_avoiding_middle_zero_is_reachable() {
    // Kill middle 0 entirely: any flow routed there gets rate 0.
    let degradations: Vec<Degradation> = (0..6)
        .flat_map(|t| [(true, t, 0, 0), (false, t, 0, 0)])
        .collect();
    let clos = degraded_clos(3, &degradations);
    let flows = flows_from_coords(&clos, &[(0, 0, 1, 0), (2, 0, 3, 0)]);
    let (brute_lex, brute_tput) = brute_force_optima::<Rational>(&clos, &flows);
    // Two disjoint flows on surviving middles: both saturate.
    assert_eq!(brute_tput, Rational::TWO);
    let (canon_lex, canon_tput) = canonical_optima::<Rational>(&clos, &flows);
    assert_eq!(canon_lex, brute_lex);
    assert_eq!(canon_tput, brute_tput);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn canonical_search_matches_brute_force_on_asymmetric_c3(
        degradations in prop::collection::vec(
            (any::<bool>(), 0..6usize, 0..3usize, 0..4u8), 0..=8),
        coords in prop::collection::vec(
            (0..6usize, 0..3usize, 0..6usize, 0..3usize), 1..=5),
    ) {
        check_asymmetric_instance(3, &degradations, &coords);
    }

    #[test]
    fn canonical_search_matches_brute_force_on_asymmetric_c4(
        degradations in prop::collection::vec(
            (any::<bool>(), 0..8usize, 0..4usize, 0..4u8), 0..=10),
        coords in prop::collection::vec(
            (0..8usize, 0..4usize, 0..8usize, 0..4usize), 1..=4),
    ) {
        check_asymmetric_instance(4, &degradations, &coords);
    }
}
