//! Degenerate-equivalence pins for the [`Fabric`] abstraction: fabrics
//! that collapse to a three-stage Clos must search *exactly* like one.
//!
//! Two degenerations are pinned:
//!
//! * `FatTree::collapsed(4)` — the 1:1 fat-tree with the pod layer
//!   collapsed builds a network byte-identical to the `(4, 4, 4)` Clos,
//!   so both exact searches must return byte-identical routings, rates,
//!   and search statistics;
//! * `BenesNetwork::standard(2)` — the order-2 Benes network is a
//!   three-stage Clos of 2×2 modules up to node naming, so the searches
//!   must agree on class assignments, rate vectors, and statistics
//!   under the terminal ↔ `(tor, host)` correspondence.
//!
//! Each degeneration gets a proptest over random small flow sets plus a
//! pinned golden on a fixed instance (exact winners and statistics
//! captured from the Clos side, which predates the refactor).

use clos_core::objectives::{search_lex_max_min, search_throughput_max_min};
use clos_net::{BenesNetwork, ClosNetwork, ClosParams, Fabric, FatTree, Flow};
use clos_rational::Rational;
use proptest::prelude::*;

fn clos444() -> ClosNetwork {
    ClosNetwork::with_params(ClosParams {
        middle_switches: 4,
        tor_pairs: 4,
        hosts_per_tor: 4,
        link_capacity: Rational::ONE,
    })
}

fn clos222() -> ClosNetwork {
    ClosNetwork::with_params(ClosParams {
        middle_switches: 2,
        tor_pairs: 2,
        hosts_per_tor: 2,
        link_capacity: Rational::ONE,
    })
}

/// Class assignment of every routed path, for cross-network comparison.
fn classes<F: Fabric>(fabric: &F, out: &clos_core::RoutedAllocation) -> Vec<usize> {
    out.routing
        .paths()
        .iter()
        .map(|p| {
            fabric
                .class_of_path(p)
                .expect("searched paths are candidate paths")
        })
        .collect()
}

proptest! {
    // Each case runs four exact searches; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn collapsed_fat_tree_searches_byte_identically_to_clos(
        picks in prop::collection::vec(
            (0..4usize, 0..4usize, 0..4usize, 0..4usize),
            1..6,
        )
    ) {
        let ft = FatTree::collapsed(4);
        let clos = clos444();
        let flows_ft: Vec<Flow> = picks
            .iter()
            .map(|&(st, sh, dt, dh)| Flow::new(ft.source(st, sh), ft.destination(dt, dh)))
            .collect();
        let flows_clos: Vec<Flow> = picks
            .iter()
            .map(|&(st, sh, dt, dh)| Flow::new(clos.source(st, sh), clos.destination(dt, dh)))
            .collect();
        // The networks are byte-identical, so the flows coincide and the
        // searches must as well — routings, rates, and statistics.
        prop_assert_eq!(&flows_ft, &flows_clos);
        let (lex_ft, lex_ft_stats) = search_lex_max_min(&ft, &flows_ft);
        let (lex_clos, lex_clos_stats) = search_lex_max_min(&clos, &flows_clos);
        prop_assert_eq!(&lex_ft.routing, &lex_clos.routing);
        prop_assert_eq!(lex_ft.allocation.rates(), lex_clos.allocation.rates());
        prop_assert_eq!(lex_ft_stats.routings_examined, lex_clos_stats.routings_examined);
        prop_assert_eq!(lex_ft_stats.pruned, lex_clos_stats.pruned);
        let (tput_ft, tput_ft_stats) = search_throughput_max_min(&ft, &flows_ft);
        let (tput_clos, tput_clos_stats) = search_throughput_max_min(&clos, &flows_clos);
        prop_assert_eq!(&tput_ft.routing, &tput_clos.routing);
        prop_assert_eq!(tput_ft.allocation.rates(), tput_clos.allocation.rates());
        prop_assert_eq!(tput_ft_stats.routings_examined, tput_clos_stats.routings_examined);
    }

    #[test]
    fn minimal_benes_searches_byte_identically_to_clos(
        picks in prop::collection::vec((0..4usize, 0..4usize), 1..6)
    ) {
        let benes = BenesNetwork::standard(2);
        let clos = clos222();
        // Terminal a ↔ host (a / 2, a % 2): the order-2 Benes wires its
        // first/last columns exactly like the 2-pair Clos ToR stage.
        let flows_b: Vec<Flow> = picks
            .iter()
            .map(|&(a, b)| Flow::new(benes.source(a), benes.destination(b)))
            .collect();
        let flows_c: Vec<Flow> = picks
            .iter()
            .map(|&(a, b)| Flow::new(clos.source(a / 2, a % 2), clos.destination(b / 2, b % 2)))
            .collect();
        let (lex_b, lex_b_stats) = search_lex_max_min(&benes, &flows_b);
        let (lex_c, lex_c_stats) = search_lex_max_min(&clos, &flows_c);
        prop_assert_eq!(classes(&benes, &lex_b), classes(&clos, &lex_c));
        prop_assert_eq!(lex_b.allocation.rates(), lex_c.allocation.rates());
        prop_assert_eq!(lex_b_stats.routings_examined, lex_c_stats.routings_examined);
        prop_assert_eq!(lex_b_stats.pruned, lex_c_stats.pruned);
        let (tput_b, tput_b_stats) = search_throughput_max_min(&benes, &flows_b);
        let (tput_c, tput_c_stats) = search_throughput_max_min(&clos, &flows_c);
        prop_assert_eq!(classes(&benes, &tput_b), classes(&clos, &tput_c));
        prop_assert_eq!(tput_b.allocation.rates(), tput_c.allocation.rates());
        prop_assert_eq!(tput_b_stats.routings_examined, tput_c_stats.routings_examined);
    }
}

/// Pinned golden: a fixed 6-flow hot-ToR instance on the collapsed
/// fat-tree must reproduce the Clos winner and statistics exactly.
#[test]
fn collapsed_fat_tree_pinned_golden() {
    let ft = FatTree::collapsed(4);
    let clos = clos444();
    let picks = [
        (0, 0, 1, 0),
        (0, 1, 1, 1),
        (0, 2, 1, 2),
        (2, 0, 1, 3),
        (2, 1, 3, 0),
        (3, 0, 0, 0),
    ];
    let flows: Vec<Flow> = picks
        .iter()
        .map(|&(st, sh, dt, dh)| Flow::new(ft.source(st, sh), ft.destination(dt, dh)))
        .collect();
    let (lex_ft, stats_ft) = search_lex_max_min(&ft, &flows);
    let (lex_clos, stats_clos) = search_lex_max_min(&clos, &flows);
    assert_eq!(lex_ft.routing, lex_clos.routing);
    assert_eq!(lex_ft.allocation.rates(), lex_clos.allocation.rates());
    assert_eq!(stats_ft.routings_examined, stats_clos.routings_examined);
    // A disjoint placement exists: everyone runs at rate 1.
    assert!(lex_ft
        .allocation
        .rates()
        .iter()
        .all(|&r| r == Rational::ONE));
}

/// Pinned golden: the full shift-by-one terminal permutation on the
/// order-2 Benes network matches the equivalent Clos bit for bit.
#[test]
fn minimal_benes_pinned_golden() {
    let benes = BenesNetwork::standard(2);
    let clos = clos222();
    let flows_b: Vec<Flow> = (0..4)
        .map(|a| Flow::new(benes.source(a), benes.destination((a + 1) % 4)))
        .collect();
    let flows_c: Vec<Flow> = (0..4)
        .map(|a| {
            let b = (a + 1) % 4;
            Flow::new(clos.source(a / 2, a % 2), clos.destination(b / 2, b % 2))
        })
        .collect();
    let (lex_b, stats_b) = search_lex_max_min(&benes, &flows_b);
    let (lex_c, stats_c) = search_lex_max_min(&clos, &flows_c);
    assert_eq!(classes(&benes, &lex_b), classes(&clos, &lex_c));
    assert_eq!(lex_b.allocation.rates(), lex_c.allocation.rates());
    assert_eq!(stats_b.routings_examined, stats_c.routings_examined);
    // Rearrangeability: the permutation runs at unit rates.
    assert!(lex_b.allocation.rates().iter().all(|&r| r == Rational::ONE));
}
