//! Property-based cross-validation: the iterative-LP and water-filling
//! derivations of max-min fairness agree on random routed collections,
//! and the splittable LP relaxation matches the macro-switch allocation.

#![allow(clippy::type_complexity)]

use clos_core::lp_models::{
    max_min_via_lp, max_splittable_throughput, max_throughput_for_routing, splittable_max_min,
};
use clos_core::macro_switch::{macro_max_min, max_throughput};
use clos_fairness::max_min_fair;
use clos_net::{ClosNetwork, Flow, MacroSwitch, Routing};
use clos_rational::Rational;
use proptest::prelude::*;

fn instance(
    max_flows: usize,
) -> impl Strategy<Value = (Vec<(usize, usize, usize, usize)>, Vec<usize>)> {
    prop::collection::vec((0..4usize, 0..2usize, 0..4usize, 0..2usize), 1..=max_flows)
        .prop_flat_map(|flows| {
            let len = flows.len();
            (Just(flows), prop::collection::vec(0..2usize, len..=len))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The two max-min derivations coincide exactly — Definition 2.1 has
    /// one answer and both algorithms find it.
    #[test]
    fn lp_equals_waterfill((coords, middles) in instance(8)) {
        let clos = ClosNetwork::standard(2);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| {
                Flow::new(clos.source(si, sj), clos.destination(ti, tj))
            })
            .collect();
        let routing: Routing = flows
            .iter()
            .zip(&middles)
            .map(|(&f, &m)| clos.path_via(f, m))
            .collect();
        let wf = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
        let lp = max_min_via_lp(clos.network(), &flows, &routing);
        prop_assert_eq!(lp, wf);
    }

    /// Demand satisfaction under fairness: splitting recovers the
    /// macro-switch max-min allocation on every random collection.
    #[test]
    fn splittable_equals_macro_switch((coords, _) in instance(6)) {
        let clos = ClosNetwork::standard(2);
        let ms = MacroSwitch::standard(2);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| {
                Flow::new(clos.source(si, sj), clos.destination(ti, tj))
            })
            .collect();
        let ms_flows = ms.translate_flows(&clos, &flows);
        let split = splittable_max_min(&clos, &flows);
        let reference = macro_max_min(&ms, &ms_flows);
        prop_assert_eq!(split, reference);
    }

    /// The generalized Theorem 3.4 (paper §7, R1): for EVERY routing of
    /// EVERY collection, the max-min fair throughput is at least half the
    /// routed maximum throughput.
    #[test]
    fn generalized_price_of_fairness_per_routing((coords, middles) in instance(10)) {
        let clos = ClosNetwork::standard(2);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| {
                Flow::new(clos.source(si, sj), clos.destination(ti, tj))
            })
            .collect();
        let routing: Routing = flows
            .iter()
            .zip(&middles)
            .map(|(&f, &m)| clos.path_via(f, m))
            .collect();
        let mmf = max_min_fair::<Rational>(clos.network(), &flows, &routing).unwrap();
        let mt = max_throughput_for_routing(clos.network(), &flows, &routing);
        prop_assert!(mmf.throughput() * Rational::TWO >= mt);
        prop_assert!(mmf.throughput() <= mt);
    }

    /// Splittable throughput dominates the unsplittable matching bound and
    /// is capped by the total host egress.
    #[test]
    fn splittable_throughput_bounds((coords, _) in instance(8)) {
        let clos = ClosNetwork::standard(2);
        let ms = MacroSwitch::standard(2);
        let flows: Vec<Flow> = coords
            .iter()
            .map(|&(si, sj, ti, tj)| {
                Flow::new(clos.source(si, sj), clos.destination(ti, tj))
            })
            .collect();
        let ms_flows = ms.translate_flows(&clos, &flows);
        let split = max_splittable_throughput(&clos, &flows);
        let mt = max_throughput(&ms, &ms_flows).throughput();
        prop_assert!(split >= mt);
        // Distinct sources bound the throughput from above.
        let sources: std::collections::HashSet<_> = flows.iter().map(|f| f.src()).collect();
        prop_assert!(split <= Rational::from_integer(sources.len() as i128));
    }
}
