//! Span-tree determinism and search-profile invariants across thread
//! counts.
//!
//! The observability contract: under stable export (count weights, no
//! nanoseconds), the aggregated span tree and the [`SearchProfile`]
//! attached to [`SearchStats`] are pure functions of the instance —
//! byte-identical for any engine thread count, because per-block
//! profiles merge by summation in canonical block order and worker
//! spans root their own `search.block` paths.
//!
//! Everything lives in one `#[test]` because span tracing aggregates
//! into process-global state: concurrent tests in this binary would
//! interleave their span trees.

use clos_core::objectives::{
    search_lex_max_min_with, search_throughput_max_min_with, SearchProfile,
};
use clos_core::search::SearchConfig;
use clos_net::{ClosNetwork, Flow};

fn flows_from(clos: &ClosNetwork, coords: &[(usize, usize, usize, usize)]) -> Vec<Flow> {
    coords
        .iter()
        .map(|&(a, b, c, d)| Flow::new(clos.source(a, b), clos.destination(c, d)))
        .collect()
}

/// Fixed C_2 instances covering ties, hot ToRs, a single flow, and a
/// permutation-ish spread.
const INSTANCES: &[&[(usize, usize, usize, usize)]] = &[
    &[(0, 1, 0, 1), (0, 1, 1, 0), (0, 1, 1, 1), (1, 0, 1, 0)],
    &[(0, 0, 2, 0), (0, 0, 2, 0), (1, 0, 3, 0)],
    &[(0, 0, 0, 0), (0, 0, 0, 0), (0, 0, 0, 0), (1, 1, 2, 1)],
    &[(2, 1, 3, 0)],
    &[
        (0, 0, 1, 1),
        (1, 0, 0, 1),
        (2, 0, 3, 1),
        (3, 0, 2, 1),
        (0, 1, 2, 0),
    ],
];

#[test]
fn profiles_and_span_trees_are_thread_count_invariant() {
    // Part 1: SearchStats (including the profile) are identical for 1,
    // 2, 4, and 16 threads, with and without branch sampling, and the
    // profile's internal invariants hold.
    for (k, coords) in INSTANCES.iter().enumerate() {
        let clos = ClosNetwork::standard(2);
        let flows = flows_from(&clos, coords);
        for sample in [None, Some(1), Some(3)] {
            let cfg1 = SearchConfig {
                threads: Some(1),
                no_prune: false,
                trace_sample: sample,
            };
            let (one_alloc, one_stats) = search_lex_max_min_with(&clos, &flows, cfg1);
            for threads in [2, 4, 16] {
                let cfg = SearchConfig {
                    threads: Some(threads),
                    ..cfg1
                };
                let (alloc, stats) = search_lex_max_min_with(&clos, &flows, cfg);
                assert_eq!(
                    one_stats, stats,
                    "stats diverged: instance {k}, {threads} threads, sample {sample:?}"
                );
                assert_eq!(one_alloc.allocation.rates(), alloc.allocation.rates());
            }

            let p = &one_stats.profile;
            assert_eq!(
                p.depth_pruned.iter().sum::<u64>(),
                one_stats.pruned,
                "per-depth prunes must sum to the total"
            );
            assert_eq!(
                p.bound_pruned + p.root_pruned,
                one_stats.pruned,
                "prune provenance must partition the total"
            );
            assert_eq!(
                p.depth_improvements.iter().sum::<u64>(),
                one_stats.improvements,
                "per-depth improvements must sum to the total"
            );
            if sample.is_none() {
                assert!(p.sampled.is_empty(), "sampling off must record nothing");
            } else {
                if one_stats.routings_examined > 1 {
                    assert!(
                        !p.sampled.is_empty(),
                        "instance {k} examined non-seed leaves but sampled none"
                    );
                }
                assert!(p.sampled.len() <= SearchProfile::MAX_SAMPLED);
                for w in p.sampled.windows(2) {
                    assert!(
                        w[0].block <= w[1].block,
                        "samples must come in canonical block order"
                    );
                }
            }

            // No-prune control: zero prunes of either provenance, at
            // least one exhausted block, never fewer leaves.
            let np = search_throughput_max_min_with(
                &clos,
                &flows,
                SearchConfig {
                    no_prune: true,
                    ..cfg1
                },
            );
            assert_eq!(np.1.pruned, 0);
            assert_eq!(np.1.profile.bound_pruned + np.1.profile.root_pruned, 0);
            assert!(np.1.profile.blocks_exhausted >= 1);
            assert!(np.1.routings_examined >= one_stats.routings_examined);
        }
    }

    // Part 2: the stable span exports are byte-identical for 1 vs 4
    // threads — the acceptance bar for `repro --stable --trace`.
    let clos = ClosNetwork::standard(2);
    let flows = flows_from(
        &clos,
        &[
            (0, 1, 0, 1),
            (0, 1, 1, 0),
            (0, 1, 1, 1),
            (1, 0, 1, 0),
            (1, 1, 0, 0),
        ],
    );
    let mut exports = Vec::new();
    for threads in [1usize, 4] {
        clos_telemetry::reset_tracing();
        clos_telemetry::set_tracing(true);
        let cfg = SearchConfig {
            threads: Some(threads),
            no_prune: false,
            trace_sample: None,
        };
        let _ = search_lex_max_min_with(&clos, &flows, cfg);
        clos_telemetry::set_tracing(false);
        let trace = clos_telemetry::take_trace();
        for path in [
            &["search"][..],
            &["search", "search.compile"],
            &["search", "search.seed"],
            &["search.block"],
            &["search.block", "waterfill"],
        ] {
            assert!(
                trace.count_at(path).is_some(),
                "{threads}-thread trace is missing span path {path:?}"
            );
        }
        exports.push((trace.to_chrome_trace(true), trace.to_folded(true)));
    }
    clos_telemetry::reset_tracing();
    assert_eq!(
        exports[0].0, exports[1].0,
        "stable Chrome trace differs between 1 and 4 threads"
    );
    assert_eq!(
        exports[0].1, exports[1].1,
        "stable folded stacks differ between 1 and 4 threads"
    );
}
