//! Determinism regression for the parallel branch-and-bound search: the
//! returned `RoutedAllocation` and `SearchStats` must be identical for
//! every thread count (ISSUE 4's CI-enforced guarantee), on instances
//! deliberately rich in key ties.
//!
//! No randomness here: these run in environments without proptest and
//! must fail loudly on any schedule-dependent divergence.

use std::sync::Mutex;

use clos_core::objectives::{
    search_lex_max_min, search_lex_max_min_with, search_throughput_max_min_with,
};
use clos_core::search::{set_search_threads, SearchConfig};
use clos_net::{ClosNetwork, Flow};

/// `set_search_threads` is process-global; serialize the tests that use it.
static SERIAL: Mutex<()> = Mutex::new(());

/// A tie-rich instance on C_3: three identical flows (every spread of
/// them over distinct middles gives the same sorted vector) plus two
/// flows sharing a source ToR.
fn tie_rich_instance() -> (ClosNetwork, Vec<Flow>) {
    let clos = ClosNetwork::standard(3);
    let flows = vec![
        Flow::new(clos.source(0, 0), clos.destination(3, 0)),
        Flow::new(clos.source(0, 0), clos.destination(3, 0)),
        Flow::new(clos.source(0, 0), clos.destination(3, 0)),
        Flow::new(clos.source(1, 0), clos.destination(4, 0)),
        Flow::new(clos.source(1, 1), clos.destination(4, 1)),
    ];
    (clos, flows)
}

#[test]
fn results_identical_across_explicit_thread_counts() {
    let (clos, flows) = tie_rich_instance();
    let reference = search_lex_max_min_with(
        &clos,
        &flows,
        SearchConfig {
            threads: Some(1),
            no_prune: false,
            trace_sample: None,
        },
    );
    for threads in [2usize, 4, 8] {
        let config = SearchConfig {
            threads: Some(threads),
            no_prune: false,
            trace_sample: None,
        };
        let got = search_lex_max_min_with(&clos, &flows, config);
        assert_eq!(
            got.0, reference.0,
            "RoutedAllocation diverged at threads={threads}"
        );
        assert_eq!(
            got.1, reference.1,
            "SearchStats diverged at threads={threads}"
        );
    }
    // Pruning changes statistics but never the result.
    let unpruned = search_lex_max_min_with(
        &clos,
        &flows,
        SearchConfig {
            threads: Some(4),
            no_prune: true,
            trace_sample: None,
        },
    );
    assert_eq!(unpruned.0, reference.0);
    assert!(unpruned.1.routings_examined >= reference.1.routings_examined);
}

#[test]
fn results_identical_across_global_thread_setting() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let (clos, flows) = tie_rich_instance();
    let mut results = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        set_search_threads(threads);
        results.push(search_lex_max_min(&clos, &flows));
    }
    set_search_threads(0);
    for pair in results.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn throughput_objective_identical_across_thread_counts() {
    let (clos, flows) = tie_rich_instance();
    let reference = search_throughput_max_min_with(
        &clos,
        &flows,
        SearchConfig {
            threads: Some(1),
            no_prune: false,
            trace_sample: None,
        },
    );
    for threads in [2usize, 4, 8] {
        let got = search_throughput_max_min_with(
            &clos,
            &flows,
            SearchConfig {
                threads: Some(threads),
                no_prune: false,
                trace_sample: None,
            },
        );
        assert_eq!(got, reference, "threads={threads}");
    }
}
