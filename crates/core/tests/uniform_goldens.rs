//! Regression pin: on uniform fabrics the capacity-class-aware
//! symmetry reduction must be invisible.
//!
//! The winners and every field of [`SearchStats`] below were captured
//! from the engine *before* capacity equivalence classes existed (when
//! the reduction hard-assumed "all links have equal capacity"). A
//! uniform fabric has exactly one capacity class, so the class-aware
//! walker must reproduce the same enumeration order, the same admitted
//! counts, and hence byte-identical statistics — at every thread count.

use clos_core::search::{run_search, LexMaxMin, SearchConfig, ThroughputMaxMin};
use clos_net::{ClosNetwork, Flow};

fn fixed_flows(clos: &ClosNetwork, picks: &[(usize, usize, usize, usize)]) -> Vec<Flow> {
    picks
        .iter()
        .map(|&(st, sh, dt, dh)| Flow::new(clos.source(st, sh), clos.destination(dt, dh)))
        .collect()
}

/// C_3, eight flows: large enough that the prefix blocks stop short of
/// the leaves, so the walker's enter/prune paths (and with them
/// `symmetry_skipped` and `bound_pruned`) are all exercised.
fn instance() -> (ClosNetwork, Vec<Flow>) {
    let clos = ClosNetwork::standard(3);
    let flows = fixed_flows(
        &clos,
        &[
            (0, 0, 1, 0),
            (0, 0, 2, 1),
            (1, 1, 1, 0),
            (2, 0, 0, 0),
            (0, 1, 2, 1),
            (1, 0, 0, 1),
            (2, 1, 1, 1),
            (0, 0, 1, 0),
        ],
    );
    (clos, flows)
}

#[test]
fn lex_winner_and_stats_pinned_at_one_two_and_four_threads() {
    let (clos, flows) = instance();
    for threads in [1usize, 2, 4] {
        let cfg = SearchConfig {
            threads: Some(threads),
            ..SearchConfig::default()
        };
        let (best, stats) = run_search(&clos, &flows, &LexMaxMin, cfg);
        assert_eq!(best, vec![0, 0, 0, 0, 1, 1, 1, 0], "threads={threads}");
        assert_eq!(stats.routings_examined, 1094, "threads={threads}");
        assert_eq!(stats.improvements, 400, "threads={threads}");
        assert_eq!(stats.pruned, 0, "threads={threads}");
        let p = &stats.profile;
        assert_eq!(p.depth_nodes, vec![0, 0, 0, 0, 0, 0, 122, 365, 0]);
        assert_eq!(p.depth_pruned, vec![0; 9]);
        assert_eq!(p.depth_improvements, vec![1, 81, 27, 9, 3, 1, 131, 147, 0]);
        assert_eq!(p.symmetry_skipped, 2, "threads={threads}");
        assert_eq!(p.bound_pruned, 0, "threads={threads}");
        assert_eq!(p.root_pruned, 0, "threads={threads}");
        assert_eq!(p.blocks_exhausted, 122, "threads={threads}");
    }
}

#[test]
fn throughput_winner_and_stats_pinned_at_one_two_and_four_threads() {
    let (clos, flows) = instance();
    for threads in [1usize, 2, 4] {
        let cfg = SearchConfig {
            threads: Some(threads),
            ..SearchConfig::default()
        };
        let (best, stats) = run_search(&clos, &flows, &ThroughputMaxMin, cfg);
        assert_eq!(best, vec![0, 0, 0, 0, 1, 1, 1, 0], "threads={threads}");
        assert_eq!(stats.routings_examined, 1031, "threads={threads}");
        assert_eq!(stats.improvements, 377, "threads={threads}");
        assert_eq!(stats.pruned, 21, "threads={threads}");
        let p = &stats.profile;
        assert_eq!(p.depth_nodes, vec![0, 0, 0, 0, 0, 0, 122, 344, 0]);
        assert_eq!(p.depth_pruned, vec![0, 0, 0, 0, 0, 0, 0, 21, 0]);
        assert_eq!(p.depth_improvements, vec![1, 81, 27, 9, 3, 1, 119, 136, 0]);
        assert_eq!(p.symmetry_skipped, 2, "threads={threads}");
        assert_eq!(p.bound_pruned, 21, "threads={threads}");
        assert_eq!(p.root_pruned, 0, "threads={threads}");
        assert_eq!(p.blocks_exhausted, 122, "threads={threads}");
    }
}
