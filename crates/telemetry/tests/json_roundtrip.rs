//! Property tests: arbitrary JSON values and experiment records survive a
//! round trip through the hand-rolled encoder/parser, and (with the
//! `serde` feature) the hand-rolled document is byte-identical to serde's.

use clos_telemetry::json::JsonValue;
use clos_telemetry::ExperimentRecord;
use proptest::prelude::*;

fn arb_json() -> impl Strategy<Value = JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<i64>().prop_map(|n| JsonValue::Int(i128::from(n))),
        // Finite floats only: the encoder maps non-finite values to null.
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(JsonValue::Float),
        ".*".prop_map(JsonValue::from),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(JsonValue::Array),
            prop::collection::vec((".*", inner), 0..6).prop_map(JsonValue::Object),
        ]
    })
}

fn arb_record() -> impl Strategy<Value = ExperimentRecord> {
    (
        "e[0-9]{1,2}",
        ".*",
        any::<bool>(),
        // Realistic wall times (milliseconds with microsecond resolution),
        // where the std and Ryu shortest-float formats coincide.
        (0u32..=86_400_000, 0u32..1000)
            .prop_map(|(ms, frac)| f64::from(ms) + f64::from(frac) / 1000.0),
        prop::collection::btree_map("[a-z_]{1,8}", ".*", 0..4),
        prop::collection::btree_map("[a-z_.]{1,12}", any::<u64>(), 0..4),
        prop::collection::btree_map("[a-z_]{1,8}", ".*", 0..4),
        prop::collection::vec((".*", any::<bool>()), 0..4),
    )
        .prop_map(
            |(id, title, quick, wall_ms, params, counters, results, audits)| {
                let mut rec = ExperimentRecord::new(&id, &title);
                rec.quick = quick;
                rec.wall_ms = wall_ms;
                rec.params = params;
                rec.counters = counters;
                rec.results = results;
                for (check, pass) in audits {
                    rec.audit(&check, pass);
                }
                rec
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_value_round_trips(value in arb_json()) {
        let encoded = value.to_string();
        let parsed = JsonValue::parse(&encoded).expect("own encoder emits valid JSON");
        prop_assert_eq!(parsed, value);
    }

    #[test]
    fn record_round_trips_through_own_codec(rec in arb_record()) {
        let line = rec.to_json_line();
        prop_assert!(!line.contains('\n'));
        let parsed = ExperimentRecord::from_json_line(&line).expect("schema round-trip");
        prop_assert_eq!(parsed, rec);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn record_round_trips_through_serde(rec in arb_record()) {
        let own_line = rec.to_json_line();
        let serde_line = serde_json::to_string(&rec).expect("serializable");
        prop_assert_eq!(&own_line, &serde_line);
        let back: ExperimentRecord = serde_json::from_str(&own_line).expect("deserializable");
        prop_assert_eq!(back, rec);
    }
}
