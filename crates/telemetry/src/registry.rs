//! The global enable flag, counters, timers, and snapshots.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns instrumentation on or off globally.
///
/// Off is the default; see the crate docs for the cost model.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Returns whether instrumentation is currently enabled.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A named monotonic event counter.
///
/// Counters are cheap statics: incrementing is a relaxed atomic add when
/// instrumentation is enabled and a single flag load otherwise.
///
/// # Examples
///
/// ```
/// use clos_telemetry::{set_enabled, Counter};
///
/// static MY_EVENTS: Counter = Counter::new("my.events");
/// MY_EVENTS.incr(); // disabled: no effect
/// assert_eq!(MY_EVENTS.get(), 0);
/// set_enabled(true);
/// MY_EVENTS.add(2);
/// assert_eq!(MY_EVENTS.get(), 2);
/// # clos_telemetry::set_enabled(false);
/// # MY_EVENTS.reset();
/// ```
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter (usable in `static` position).
    #[must_use]
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Returns the counter's name (dot-separated, e.g. `waterfill.rounds`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n` to the counter if instrumentation is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter if instrumentation is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Returns the current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero (works even when disabled).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A named accumulator of wall-clock time over scopes.
///
/// # Examples
///
/// ```
/// use clos_telemetry::{set_enabled, Timer};
///
/// static MY_PHASE: Timer = Timer::new("my.phase");
/// set_enabled(true);
/// {
///     let _guard = MY_PHASE.scope();
///     // ... timed work ...
/// }
/// assert_eq!(MY_PHASE.spans(), 1);
/// # clos_telemetry::set_enabled(false);
/// # MY_PHASE.reset();
/// ```
#[derive(Debug)]
pub struct Timer {
    name: &'static str,
    nanos: AtomicU64,
    spans: AtomicU64,
}

impl Timer {
    /// Creates a timer (usable in `static` position).
    #[must_use]
    pub const fn new(name: &'static str) -> Timer {
        Timer {
            name,
            nanos: AtomicU64::new(0),
            spans: AtomicU64::new(0),
        }
    }

    /// Returns the timer's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Starts a scoped measurement; the elapsed wall time is recorded when
    /// the returned guard drops. A no-op (no clock read) when disabled.
    #[must_use]
    pub fn scope(&self) -> TimerGuard<'_> {
        TimerGuard {
            timer: self,
            start: if enabled() {
                Some(Instant::now())
            } else {
                None
            },
        }
    }

    /// Records one completed span of `elapsed` wall time.
    pub fn record(&self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(ns, Ordering::Relaxed);
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Total recorded nanoseconds.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Number of recorded spans.
    #[must_use]
    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Resets the timer (works even when disabled).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
        self.spans.store(0, Ordering::Relaxed);
    }
}

/// The guard returned by [`Timer::scope`]; records on drop.
#[derive(Debug)]
pub struct TimerGuard<'a> {
    timer: &'a Timer,
    start: Option<Instant>,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.timer.record(start.elapsed());
        }
    }
}

/// The workspace's counter registry: one static per instrumented event.
pub mod counters {
    use super::Counter;

    /// Water-filling invocations (`max_min_fair_traced`).
    pub static WATERFILL_CALLS: Counter = Counter::new("waterfill.calls");
    /// Water-filling freezing rounds (one per fill level).
    pub static WATERFILL_ROUNDS: Counter = Counter::new("waterfill.rounds");
    /// Links saturated during water-filling (may exceed rounds when several
    /// links saturate at the same level).
    pub static WATERFILL_SATURATIONS: Counter = Counter::new("waterfill.saturations");
    /// Simplex solves (`LinearProgram::solve`).
    pub static SIMPLEX_SOLVES: Counter = Counter::new("simplex.solves");
    /// Simplex pivots across both phases.
    pub static SIMPLEX_PIVOTS: Counter = Counter::new("simplex.pivots");
    /// Degenerate pivots (leaving row already at zero — no objective
    /// progress; Bland's rule guards against cycling through these).
    pub static SIMPLEX_DEGENERATE_PIVOTS: Counter = Counter::new("simplex.degenerate_pivots");
    /// Hopcroft–Karp invocations.
    pub static MATCHING_CALLS: Counter = Counter::new("matching.calls");
    /// Hopcroft–Karp BFS layering phases.
    pub static MATCHING_BFS_PHASES: Counter = Counter::new("matching.bfs_phases");
    /// Augmenting paths applied (equals the final matching size).
    pub static MATCHING_AUGMENTING_PATHS: Counter = Counter::new("matching.augmenting_paths");
    /// König edge-coloring invocations.
    pub static COLORING_CALLS: Counter = Counter::new("coloring.calls");
    /// König coloring passes (one per edge inserted).
    pub static COLORING_PASSES: Counter = Counter::new("coloring.passes");
    /// Alternating-path recolorings performed during insertion.
    pub static COLORING_PATH_FLIPS: Counter = Counter::new("coloring.path_flips");
    /// Exhaustive routing-objective searches started.
    pub static SEARCH_RUNS: Counter = Counter::new("search.runs");
    /// Canonical middle-switch assignments enumerated (callbacks from
    /// `for_each_canonical_assignment`).
    pub static SEARCH_ASSIGNMENTS: Counter = Counter::new("search.assignments");
    /// Times a search improved its incumbent optimum.
    pub static SEARCH_IMPROVEMENTS: Counter = Counter::new("search.improvements");
    /// Assignment subtrees skipped by branch-and-bound pruning (their
    /// admissible objective bound could not beat an incumbent).
    pub static SEARCH_PRUNED: Counter = Counter::new("search.pruned");
    /// Water-filling runs served by an already-warm scratch buffer (no
    /// fresh allocations; see `clos-fairness`'s compiled pipeline).
    pub static WATERFILL_SCRATCH_REUSE: Counter = Counter::new("waterfill.scratch_reuse");
    /// Flow events (arrivals + departures) applied to a churn engine.
    pub static CHURN_EVENTS: Counter = Counter::new("churn.events");
    /// Flow arrivals applied to a churn engine.
    pub static CHURN_ARRIVALS: Counter = Counter::new("churn.arrivals");
    /// Flow departures applied to a churn engine.
    pub static CHURN_DEPARTURES: Counter = Counter::new("churn.departures");
    /// Churn recompute epochs (batched incremental water-filling runs).
    pub static CHURN_EPOCHS: Counter = Counter::new("churn.epochs");
    /// Links marked dirty by churn events since the previous epoch.
    pub static CHURN_DIRTY_LINKS: Counter = Counter::new("churn.dirty_links");
    /// Live flows whose rates a churn epoch recomputed (the dirty region).
    pub static CHURN_RECOMPUTED_FLOWS: Counter = Counter::new("churn.recomputed_flows");
    /// Live flows whose cached rates a churn epoch reused untouched.
    pub static CHURN_REUSED_FLOWS: Counter = Counter::new("churn.reused_flows");
    /// Failure overlays applied to a churn engine (`apply_failure`
    /// calls that changed at least one link).
    pub static FAILURE_EVENTS: Counter = Counter::new("failure.events");
    /// Links whose capacity a failure overlay actually changed.
    pub static FAILURE_LINKS_DEGRADED: Counter = Counter::new("failure.links_degraded");
    /// Flows moved off a dead link by the local fast-reroute policy.
    pub static REROUTE_FLOWS: Counter = Counter::new("reroute.flows");
    /// Flows the reroute policy could not save (no middle with a
    /// surviving uplink and downlink, or a dead host link).
    pub static REROUTE_DEAD_ENDS: Counter = Counter::new("reroute.dead_ends");
    /// Non-Clos fabric constructions (Benes and fat-tree builders; the
    /// Clos constructor predates the `Fabric` trait and stays silent so
    /// historical experiment telemetry is unchanged).
    pub static TOPOLOGY_BUILDS: Counter = Counter::new("topology.builds");
    /// Routing classes exposed by constructed non-Clos fabrics
    /// (accumulated over `topology.builds`).
    pub static FABRIC_CLASSES: Counter = Counter::new("fabric.classes");

    /// Every registered counter, in a stable order.
    #[must_use]
    pub fn all() -> [&'static Counter; 30] {
        [
            &WATERFILL_CALLS,
            &WATERFILL_ROUNDS,
            &WATERFILL_SATURATIONS,
            &SIMPLEX_SOLVES,
            &SIMPLEX_PIVOTS,
            &SIMPLEX_DEGENERATE_PIVOTS,
            &MATCHING_CALLS,
            &MATCHING_BFS_PHASES,
            &MATCHING_AUGMENTING_PATHS,
            &COLORING_CALLS,
            &COLORING_PASSES,
            &COLORING_PATH_FLIPS,
            &SEARCH_RUNS,
            &SEARCH_ASSIGNMENTS,
            &SEARCH_IMPROVEMENTS,
            &SEARCH_PRUNED,
            &WATERFILL_SCRATCH_REUSE,
            &CHURN_EVENTS,
            &CHURN_ARRIVALS,
            &CHURN_DEPARTURES,
            &CHURN_EPOCHS,
            &CHURN_DIRTY_LINKS,
            &CHURN_RECOMPUTED_FLOWS,
            &CHURN_REUSED_FLOWS,
            &FAILURE_EVENTS,
            &FAILURE_LINKS_DEGRADED,
            &REROUTE_FLOWS,
            &REROUTE_DEAD_ENDS,
            &TOPOLOGY_BUILDS,
            &FABRIC_CLASSES,
        ]
    }

    /// Resets every registered counter.
    pub fn reset_all() {
        for c in all() {
            c.reset();
        }
    }
}

/// The workspace's timer registry.
pub mod timers {
    use super::Timer;

    /// Wall time inside water-filling.
    pub static WATERFILL: Timer = Timer::new("waterfill");
    /// Wall time inside simplex solves.
    pub static SIMPLEX: Timer = Timer::new("simplex");
    /// Wall time inside exhaustive routing-objective searches.
    pub static SEARCH: Timer = Timer::new("search");
    /// Wall time compiling a search instance (dense incidence tables),
    /// paid once per search rather than once per evaluated routing.
    pub static SEARCH_COMPILE: Timer = Timer::new("search.compile");
    /// Wall time inside churn recompute epochs (region discovery plus the
    /// incremental water-filling run).
    pub static CHURN_EPOCH: Timer = Timer::new("churn.epoch");

    /// Every registered timer, in a stable order.
    #[must_use]
    pub fn all() -> [&'static Timer; 5] {
        [&WATERFILL, &SIMPLEX, &SEARCH, &SEARCH_COMPILE, &CHURN_EPOCH]
    }

    /// Resets every registered timer.
    pub fn reset_all() {
        for t in all() {
            t.reset();
        }
    }
}

/// A point-in-time capture of every registered counter and timer.
///
/// Timers appear as two entries each: `<name>.nanos` and `<name>.spans`.
/// Entries are sorted by name, so snapshot and delta output is stable
/// across runs regardless of registration order.
///
/// # Examples
///
/// ```
/// use clos_telemetry::{counters, set_enabled, Snapshot};
///
/// set_enabled(true);
/// let before = Snapshot::take();
/// counters::SIMPLEX_PIVOTS.incr();
/// let delta = Snapshot::take().delta_since(&before);
/// assert!(delta.contains(&("simplex.pivots".to_string(), 1)));
/// # clos_telemetry::set_enabled(false);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Snapshot {
    entries: Vec<(String, u64)>,
}

impl Snapshot {
    /// Captures the current value of every registered counter and timer.
    #[must_use]
    pub fn take() -> Snapshot {
        let mut entries: Vec<(String, u64)> = counters::all()
            .iter()
            .map(|c| (c.name().to_string(), c.get()))
            .collect();
        for t in timers::all() {
            entries.push((format!("{}.nanos", t.name()), t.total_nanos()));
            entries.push((format!("{}.spans", t.name()), t.spans()));
        }
        // Report order must not depend on registration order: sort by
        // name so snapshots (and the deltas derived from them) are
        // deterministic across runs and refactors of the registries.
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Snapshot { entries }
    }

    /// Returns all captured `(name, value)` entries.
    #[must_use]
    pub fn entries(&self) -> &[(String, u64)] {
        &self.entries
    }

    /// Returns the value captured for `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Returns the entries that grew since `earlier` (zero deltas are
    /// omitted). Saturates at zero if a counter was reset in between.
    #[must_use]
    pub fn delta_since(&self, earlier: &Snapshot) -> Vec<(String, u64)> {
        self.entries
            .iter()
            .map(|(name, now)| {
                let before = earlier.get(name).unwrap_or(0);
                (name.clone(), now.saturating_sub(before))
            })
            .filter(|&(_, d)| d > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry state is global; keep every test that mutates it under one
    // lock so `cargo test`'s parallel threads don't interleave.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_counters_do_nothing() {
        let _guard = serial();
        set_enabled(false);
        static C: Counter = Counter::new("test.disabled");
        C.reset();
        C.incr();
        C.add(10);
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn enabled_counters_accumulate() {
        let _guard = serial();
        static C: Counter = Counter::new("test.enabled");
        C.reset();
        set_enabled(true);
        C.incr();
        C.add(4);
        set_enabled(false);
        C.incr(); // ignored again
        assert_eq!(C.get(), 5);
        assert_eq!(C.name(), "test.enabled");
        C.reset();
        assert_eq!(C.get(), 0);
    }

    #[test]
    fn disabled_timer_records_nothing() {
        let _guard = serial();
        set_enabled(false);
        static T: Timer = Timer::new("test.timer.off");
        T.reset();
        drop(T.scope());
        assert_eq!(T.spans(), 0);
        assert_eq!(T.total_nanos(), 0);
    }

    #[test]
    fn enabled_timer_counts_spans() {
        let _guard = serial();
        static T: Timer = Timer::new("test.timer.on");
        T.reset();
        set_enabled(true);
        drop(T.scope());
        drop(T.scope());
        set_enabled(false);
        assert_eq!(T.spans(), 2);
        T.record(Duration::from_nanos(7));
        assert_eq!(T.spans(), 3);
        assert!(T.total_nanos() >= 7);
        T.reset();
    }

    #[test]
    fn snapshot_delta_reports_only_growth() {
        let _guard = serial();
        counters::reset_all();
        timers::reset_all();
        set_enabled(true);
        let before = Snapshot::take();
        counters::WATERFILL_ROUNDS.add(2);
        counters::SIMPLEX_PIVOTS.incr();
        let after = Snapshot::take();
        set_enabled(false);
        let delta = after.delta_since(&before);
        // Deltas come out name-sorted (snapshot entries are sorted).
        assert_eq!(
            delta,
            vec![
                ("simplex.pivots".to_string(), 1),
                ("waterfill.rounds".to_string(), 2),
            ]
        );
        assert_eq!(after.get("waterfill.rounds"), Some(2));
        assert_eq!(after.get("no.such.counter"), None);
        counters::reset_all();
    }

    #[test]
    fn registries_have_unique_names() {
        let mut names: Vec<&str> = counters::all().iter().map(|c| c.name()).collect();
        names.extend(timers::all().iter().map(|t| t.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate telemetry names");
    }
}
