//! Hierarchical span tracing: thread-local span stacks, aggregated span
//! trees, and Chrome-trace / folded-stack exporters.
//!
//! # Model
//!
//! A *span* is a named scope opened with [`span`] (nested under the
//! enclosing span on the same thread) or [`span_root`] (a fresh root,
//! regardless of what is on the stack) and closed when its guard drops,
//! measuring monotonic wall time in between. Spans are **aggregated, not
//! logged**: every thread folds its closed spans into a [`SpanTree`] —
//! one node per distinct name-path, carrying a count and a total
//! duration — instead of appending one event per occurrence. Aggregation
//! is what keeps tracing affordable inside the branch-and-bound hot loop
//! (millions of water-fillings become one node) and what makes the
//! recorded *structure* deterministic: the set of name-paths and their
//! counts are properties of the work performed, not of the thread
//! schedule, so a `--stable` export is byte-identical for any thread
//! count.
//!
//! [`span_root`] exists exactly for that determinism: a worker
//! processing a search block opens the block span as a root, so the
//! block subtree looks the same whether the block ran on the main thread
//! (where an enclosing `search` span is on the stack) or on a scoped
//! worker (where the stack is empty).
//!
//! # Gating and collection
//!
//! Tracing is **off by default** and controlled by [`set_tracing`],
//! independently of the counter/timer flag
//! ([`set_enabled`](crate::set_enabled)): spans cost a thread-local
//! lookup and two clock reads each, so they are opt-in per run
//! (`repro --trace`). When a traced thread exits, its tree is folded
//! into a process-global accumulator; [`take_trace`] merges that
//! accumulator with the calling thread's live tree. Scoped worker
//! threads (`std::thread::scope`) therefore contribute automatically —
//! they exit before the spawning call returns.
//!
//! # Examples
//!
//! ```
//! use clos_telemetry::span::{reset_tracing, set_tracing, span, take_trace};
//!
//! reset_tracing();
//! set_tracing(true);
//! {
//!     let _outer = span("solve");
//!     let _inner = span("pivot");
//! }
//! set_tracing(false);
//! let trace = take_trace();
//! let folded = trace.to_folded(true);
//! assert_eq!(folded, "solve 1\nsolve;pivot 1\n");
//! # reset_tracing();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::JsonValue;

static TRACING: AtomicBool = AtomicBool::new(false);

/// The trees of every traced thread that has already exited, merged.
static FINISHED: Mutex<Option<SpanTree>> = Mutex::new(None);

/// Turns span tracing on or off globally (independent of the
/// counter/timer flag).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Release);
}

/// Returns whether span tracing is currently enabled.
#[must_use]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// One aggregated span node: occurrence count, total wall nanoseconds,
/// and children keyed (and therefore deterministically ordered) by name.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct SpanNode {
    count: u64,
    nanos: u64,
    children: BTreeMap<String, SpanNode>,
}

impl SpanNode {
    fn merge(&mut self, other: &SpanNode) {
        self.count += other.count;
        self.nanos += other.nanos;
        for (name, child) in &other.children {
            self.children.entry(name.clone()).or_default().merge(child);
        }
    }
}

/// An aggregated tree of recorded spans.
///
/// Structure (names, nesting, sibling order) and counts are deterministic
/// for deterministic work; durations are wall-clock noise. The `stable`
/// exporter mode therefore weighs nodes by *count* and omits nanoseconds,
/// producing byte-identical output across runs and thread counts.
///
/// # Examples
///
/// ```
/// use clos_telemetry::span::SpanTree;
///
/// let mut tree = SpanTree::new();
/// tree.record_path(&["search", "waterfill"], 1_000);
/// tree.record_path(&["search", "waterfill"], 2_000);
/// tree.record_path(&["search"], 10_000);
/// assert_eq!(tree.to_folded(true), "search 1\nsearch;waterfill 2\n");
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SpanTree {
    root: SpanNode,
}

impl SpanTree {
    /// Creates an empty tree.
    #[must_use]
    pub fn new() -> SpanTree {
        SpanTree::default()
    }

    /// Returns `true` if no span was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty()
    }

    /// Records one completed span occurrence at `path` (outermost name
    /// first), adding `nanos` to its total duration. Intermediate nodes
    /// are created as needed (with zero counts of their own until they
    /// are recorded directly). Empty paths are ignored.
    pub fn record_path(&mut self, path: &[&str], nanos: u64) {
        let Some(node) = path.iter().try_fold(&mut self.root, |node, name| {
            Some(node.children.entry((*name).to_string()).or_default())
        }) else {
            return;
        };
        if path.is_empty() {
            return;
        }
        node.count += 1;
        node.nanos = node.nanos.saturating_add(nanos);
    }

    /// Folds `other` into `self` (summing counts and durations; the
    /// union of paths is kept). Merging is commutative, so the result is
    /// independent of the order finished threads are folded in.
    pub fn merge(&mut self, other: &SpanTree) {
        self.root.merge(&other.root);
    }

    /// Calls `f` once per recorded node in deterministic (depth-first,
    /// name-sorted) order with `(path, count, total_nanos)`.
    pub fn visit(&self, mut f: impl FnMut(&[&str], u64, u64)) {
        fn walk<'a>(
            node: &'a SpanNode,
            path: &mut Vec<&'a str>,
            f: &mut impl FnMut(&[&str], u64, u64),
        ) {
            for (name, child) in &node.children {
                path.push(name);
                f(path, child.count, child.nanos);
                walk(child, path, f);
                path.pop();
            }
        }
        walk(&self.root, &mut Vec::new(), &mut f);
    }

    /// Total recorded occurrences of the span named by `path`, if any.
    #[must_use]
    pub fn count_at(&self, path: &[&str]) -> Option<u64> {
        path.iter()
            .try_fold(&self.root, |node, name| node.children.get(*name))
            .map(|node| node.count)
    }

    /// Exports the tree as a Chrome trace-event JSON document (load it
    /// at `chrome://tracing` or in Perfetto).
    ///
    /// Every node becomes one complete (`"ph":"X"`) event laid out as a
    /// flame graph: children are packed left-to-right inside their
    /// parent, siblings in name order. In wall mode (`stable == false`)
    /// widths are total nanoseconds (emitted as microsecond timestamps)
    /// and each event carries `count` and `total_ns` args. In `stable`
    /// mode widths are occurrence *counts* and nanoseconds are omitted,
    /// so the document is byte-identical for any thread count when the
    /// traced work is deterministic.
    #[must_use]
    pub fn to_chrome_trace(&self, stable: bool) -> String {
        // Width of a node: its own weight, grown to fit its children.
        fn width(node: &SpanNode, stable: bool) -> u64 {
            let own = if stable { node.count } else { node.nanos };
            let kids: u64 = node
                .children
                .values()
                .map(|child| width(child, stable))
                .sum();
            own.max(kids)
        }
        fn emit(node: &SpanNode, start: u64, stable: bool, events: &mut Vec<JsonValue>) {
            let mut cursor = start;
            for (name, child) in &node.children {
                let w = width(child, stable);
                let mut fields = vec![
                    ("name".to_string(), JsonValue::from(name.clone())),
                    ("ph".to_string(), JsonValue::from("X")),
                    ("pid".to_string(), JsonValue::from(0u64)),
                    ("tid".to_string(), JsonValue::from(0u64)),
                    ("ts".to_string(), scale(cursor, stable)),
                    ("dur".to_string(), scale(w, stable)),
                ];
                let mut args = vec![("count".to_string(), JsonValue::from(child.count))];
                if !stable {
                    args.push(("total_ns".to_string(), JsonValue::from(child.nanos)));
                }
                fields.push(("args".to_string(), JsonValue::Object(args)));
                events.push(JsonValue::Object(fields));
                emit(child, cursor, stable, events);
                cursor += w;
            }
        }
        /// Chrome timestamps are microseconds; stable weights are counts
        /// and stay as-is.
        fn scale(raw: u64, stable: bool) -> JsonValue {
            if stable {
                JsonValue::from(raw)
            } else {
                JsonValue::from(raw / 1_000)
            }
        }
        let mut events = Vec::new();
        emit(&self.root, 0, stable, &mut events);
        let doc = JsonValue::Object(vec![
            ("schema".to_string(), JsonValue::from("clos-trace/v1")),
            ("stable".to_string(), JsonValue::from(stable)),
            (
                "displayTimeUnit".to_string(),
                JsonValue::from(if stable { "ns" } else { "ms" }),
            ),
            ("traceEvents".to_string(), JsonValue::Array(events)),
        ]);
        format!("{doc}\n")
    }

    /// Exports the tree as folded stacks (`inferno` / `flamegraph.pl`
    /// input): one `path;seg;ment weight` line per node, in
    /// deterministic order.
    ///
    /// In wall mode the weight is the node's *self* time in nanoseconds
    /// (total minus children; zero-self nodes are skipped, as folded
    /// consumers expect). In `stable` mode the weight is the occurrence
    /// count of every recorded node, durations never appear, and nodes
    /// with a zero count of their own (pure intermediates) are skipped.
    /// Stack-frame separators (`;`), spaces, and newlines inside names
    /// are replaced with `_` so lines stay parseable.
    #[must_use]
    pub fn to_folded(&self, stable: bool) -> String {
        fn sanitize(name: &str) -> String {
            name.replace([';', ' ', '\n', '\r', '\t'], "_")
        }
        let mut out = String::new();
        let mut walk: Vec<(Vec<String>, &SpanNode)> = self
            .root
            .children
            .iter()
            .rev()
            .map(|(name, child)| (vec![sanitize(name)], child))
            .collect();
        while let Some((path, node)) = walk.pop() {
            let weight = if stable {
                node.count
            } else {
                let children: u64 = node.children.values().map(|c| c.nanos).sum();
                node.nanos.saturating_sub(children)
            };
            if weight > 0 {
                out.push_str(&path.join(";"));
                out.push(' ');
                out.push_str(&weight.to_string());
                out.push('\n');
            }
            for (name, child) in node.children.iter().rev() {
                let mut next = path.clone();
                next.push(sanitize(name));
                walk.push((next, child));
            }
        }
        out
    }
}

/// One open span on a thread's stack.
struct Frame {
    name: &'static str,
    /// `true` for [`span_root`] frames: the path recorded for this frame
    /// and its descendants starts here, not at the stack bottom.
    root: bool,
}

/// This thread's live trace: the stack of open spans plus the tree of
/// closed ones. The tree is folded into [`FINISHED`] whenever the stack
/// empties (closing an outermost span), so a scoped worker's spans are
/// globally visible the moment its last guard drops — *before* the
/// spawning `std::thread::scope` returns. (Thread-local destructors are
/// only a backstop: they may run after `scope` unblocks, too late for a
/// `take_trace` right after the scope.)
#[derive(Default)]
struct ThreadTrace {
    stack: Vec<Frame>,
    tree: SpanTree,
}

impl ThreadTrace {
    fn flush(&mut self) {
        if self.tree.is_empty() {
            return;
        }
        let mut finished = FINISHED
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        finished.get_or_insert_with(SpanTree::new).merge(&self.tree);
        self.tree = SpanTree::new();
    }
}

impl Drop for ThreadTrace {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static THREAD_TRACE: RefCell<ThreadTrace> = RefCell::new(ThreadTrace::default());
}

/// The guard returned by [`span`] / [`span_root`]; closes the span (and
/// records its duration) on drop. Guards must drop in LIFO order, which
/// scoped `let` bindings guarantee.
#[must_use = "a span measures the scope of its guard"]
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
}

fn open(name: &'static str, root: bool) -> SpanGuard {
    if !tracing_enabled() {
        return SpanGuard { start: None };
    }
    THREAD_TRACE.with(|trace| {
        trace.borrow_mut().stack.push(Frame { name, root });
    });
    SpanGuard {
        start: Some(Instant::now()),
    }
}

/// Opens a span named `name`, nested under the enclosing open span on
/// this thread (if any). A no-op returning an inert guard when tracing
/// is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    open(name, false)
}

/// Opens a span named `name` as a fresh *root*: the recorded path starts
/// at this span even if other spans are open on the thread. Use it for
/// work units that may run either inline or on worker threads (e.g. one
/// search block), so the recorded structure is identical either way.
pub fn span_root(name: &'static str) -> SpanGuard {
    open(name, true)
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        THREAD_TRACE.with(|trace| {
            let trace = &mut *trace.borrow_mut();
            let Some(top) = trace.stack.len().checked_sub(1) else {
                return;
            };
            // The recorded path runs from the innermost root frame (or
            // the stack bottom) up to this guard's frame.
            let base = trace.stack[..top]
                .iter()
                .rposition(|frame| frame.root)
                .filter(|_| !trace.stack[top].root)
                .unwrap_or(if trace.stack[top].root { top } else { 0 });
            let path: Vec<&str> = trace.stack[base..].iter().map(|frame| frame.name).collect();
            trace.tree.record_path(&path, nanos);
            trace.stack.pop();
            if trace.stack.is_empty() {
                trace.flush();
            }
        });
    }
}

/// Returns the merged trace: every finished traced thread's tree plus
/// the calling thread's live tree. Does not clear anything; call
/// [`reset_tracing`] to start a fresh trace.
#[must_use]
pub fn take_trace() -> SpanTree {
    let mut merged = FINISHED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
        .unwrap_or_default();
    THREAD_TRACE.with(|trace| merged.merge(&trace.borrow().tree));
    merged
}

/// Clears the global accumulator and the calling thread's recorded tree
/// (open spans on the calling thread keep recording afterwards). Other
/// live threads' trees are untouched.
pub fn reset_tracing() {
    *FINISHED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    THREAD_TRACE.with(|trace| trace.borrow_mut().tree = SpanTree::new());
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tracing state is process-global; serialize the tests that touch it.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = serial();
        reset_tracing();
        set_tracing(false);
        {
            let _a = span("a");
            let _b = span("b");
        }
        assert!(take_trace().is_empty());
    }

    #[test]
    fn nesting_and_counts() {
        let _guard = serial();
        reset_tracing();
        set_tracing(true);
        for _ in 0..3 {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _other = span("other");
        }
        set_tracing(false);
        let trace = take_trace();
        assert_eq!(trace.count_at(&["outer"]), Some(3));
        assert_eq!(trace.count_at(&["outer", "inner"]), Some(3));
        assert_eq!(trace.count_at(&["other"]), Some(1));
        assert_eq!(trace.count_at(&["inner"]), None);
        reset_tracing();
    }

    #[test]
    fn span_root_detaches_from_the_stack() {
        let _guard = serial();
        reset_tracing();
        set_tracing(true);
        {
            let _outer = span("outer");
            let _block = span_root("block");
            let _leaf = span("leaf");
        }
        set_tracing(false);
        let trace = take_trace();
        // The block subtree sits at the root, not under "outer", and the
        // leaf nests under the block — same shape a worker thread records.
        assert_eq!(trace.count_at(&["block"]), Some(1));
        assert_eq!(trace.count_at(&["block", "leaf"]), Some(1));
        assert_eq!(trace.count_at(&["outer", "block"]), None);
        assert_eq!(trace.count_at(&["outer"]), Some(1));
        reset_tracing();
    }

    #[test]
    fn worker_threads_fold_into_the_global_trace() {
        let _guard = serial();
        reset_tracing();
        set_tracing(true);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    let _block = span_root("block");
                    let _leaf = span("leaf");
                });
            }
        });
        set_tracing(false);
        let trace = take_trace();
        assert_eq!(trace.count_at(&["block"]), Some(2));
        assert_eq!(trace.count_at(&["block", "leaf"]), Some(2));
        reset_tracing();
    }

    #[test]
    fn record_path_aggregates() {
        let mut tree = SpanTree::new();
        tree.record_path(&["a"], 5);
        tree.record_path(&["a"], 7);
        tree.record_path(&["a", "b"], 2);
        tree.record_path(&[], 99); // ignored
        assert_eq!(tree.count_at(&["a"]), Some(2));
        assert_eq!(tree.count_at(&["a", "b"]), Some(1));
        let mut seen = Vec::new();
        tree.visit(|path, count, nanos| seen.push((path.join("/"), count, nanos)));
        assert_eq!(
            seen,
            vec![("a".to_string(), 2, 12), ("a/b".to_string(), 1, 2)]
        );
    }

    #[test]
    fn empty_tree_exports_are_empty() {
        let tree = SpanTree::new();
        assert!(tree.is_empty());
        assert_eq!(tree.to_folded(true), "");
        assert_eq!(tree.to_folded(false), "");
        for stable in [false, true] {
            let doc = tree.to_chrome_trace(stable);
            assert!(doc.contains("\"traceEvents\":[]"), "doc: {doc}");
            assert!(crate::json::JsonValue::parse(&doc).is_ok());
        }
    }

    #[test]
    fn chrome_trace_escapes_names_and_is_valid_json() {
        let mut tree = SpanTree::new();
        tree.record_path(&["quote\"back\\slash\nnewline"], 1_500);
        let doc = tree.to_chrome_trace(false);
        let parsed = crate::json::JsonValue::parse(&doc).expect("chrome trace must be valid JSON");
        let doc2 = tree.to_chrome_trace(false);
        assert_eq!(doc, doc2, "export must be deterministic");
        assert!(doc.contains("quote\\\"back\\\\slash\\nnewline"));
        assert!(doc.ends_with('\n'));
        drop(parsed);
    }

    #[test]
    fn chrome_trace_packs_children_inside_parents() {
        let mut tree = SpanTree::new();
        // Parent recorded 1x; children counts 2 and 3 overflow the
        // parent's own weight, so the parent widens to fit them.
        tree.record_path(&["p"], 10);
        tree.record_path(&["p", "a"], 1);
        tree.record_path(&["p", "a"], 1);
        for _ in 0..3 {
            tree.record_path(&["p", "b"], 1);
        }
        let doc = tree.to_chrome_trace(true);
        // Stable mode: parent width = max(1, 2 + 3) = 5; "a" sits at
        // ts 0 width 2, "b" at ts 2 width 3. Counts, never nanos.
        assert!(doc.contains("\"name\":\"p\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":5"));
        assert!(doc.contains("\"name\":\"a\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":2"));
        assert!(doc.contains("\"name\":\"b\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":2,\"dur\":3"));
        assert!(!doc.contains("total_ns"));
    }

    #[test]
    fn folded_output_sanitizes_separators_and_reports_self_time() {
        let mut tree = SpanTree::new();
        tree.record_path(&["has space;and;semis"], 5_000);
        tree.record_path(&["has space;and;semis", "child"], 2_000);
        let wall = tree.to_folded(false);
        // Wall mode: parent weight is self time (5000 - 2000).
        assert_eq!(
            wall,
            "has_space_and_semis 3000\nhas_space_and_semis;child 2000\n"
        );
        let stable = tree.to_folded(true);
        assert_eq!(
            stable,
            "has_space_and_semis 1\nhas_space_and_semis;child 1\n"
        );
    }

    #[test]
    fn folded_skips_zero_weight_intermediates() {
        let mut tree = SpanTree::new();
        // "outer" is never recorded directly — only its child is — so in
        // stable mode it has count 0 and must not produce a line.
        tree.record_path(&["outer", "inner"], 1_000);
        assert_eq!(tree.to_folded(true), "outer;inner 1\n");
        assert_eq!(tree.to_folded(false), "outer;inner 1000\n");
    }

    #[test]
    fn merge_is_commutative() {
        let mut left = SpanTree::new();
        left.record_path(&["a"], 1);
        left.record_path(&["a", "b"], 2);
        let mut right = SpanTree::new();
        right.record_path(&["a"], 10);
        right.record_path(&["c"], 3);
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        assert_eq!(lr, rl);
        assert_eq!(lr.count_at(&["a"]), Some(2));
    }
}
