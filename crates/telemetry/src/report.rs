//! Machine-readable experiment reports: the JSON-Lines record schema.

use std::collections::BTreeMap;
use std::io;

use crate::json::{JsonError, JsonValue};

/// One named pass/fail verdict from a [`RoutingAudit`]-style bound check.
///
/// [`RoutingAudit`]: https://docs.rs/clos-core
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AuditVerdict {
    /// What was checked (e.g. `"routing 1 bounds"`).
    pub check: String,
    /// Whether the check passed.
    pub pass: bool,
}

/// One JSON-Lines record describing a completed experiment.
///
/// Map-valued fields use `BTreeMap` so the field order — and therefore the
/// emitted JSON — is deterministic, and so the hand-rolled encoder
/// ([`to_json_line`]) and the `serde` derives produce the identical
/// document.
///
/// # Examples
///
/// ```
/// use clos_telemetry::{AuditVerdict, ExperimentRecord};
///
/// let mut rec = ExperimentRecord::new("e1", "Example 2.3");
/// rec.quick = true;
/// rec.wall_ms = 0.25;
/// rec.param("routings", "2");
/// rec.result("throughput", "3");
/// rec.audit("routing 1 bounds", true);
/// let line = rec.to_json_line();
/// assert!(line.starts_with("{\"record\":\"experiment\",\"id\":\"e1\""));
/// assert_eq!(ExperimentRecord::from_json_line(&line).unwrap(), rec);
/// assert!(rec.all_pass());
/// ```
///
/// [`to_json_line`]: ExperimentRecord::to_json_line
#[derive(Clone, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExperimentRecord {
    /// Record discriminator; always `"experiment"`.
    pub record: String,
    /// Experiment id (`"e1"` … `"e12"`).
    pub id: String,
    /// Human-readable experiment title.
    pub title: String,
    /// Whether the run used `--quick` parameters.
    pub quick: bool,
    /// Wall-clock time of the experiment in milliseconds.
    pub wall_ms: f64,
    /// Input parameters (sweep sizes, seeds, …), stringified.
    pub params: BTreeMap<String, String>,
    /// Telemetry counter deltas attributable to this experiment.
    pub counters: BTreeMap<String, u64>,
    /// Key results (throughputs, ratios, …), stringified exactly
    /// (rationals keep their `p/q` form).
    pub results: BTreeMap<String, String>,
    /// Bound-check verdicts; `pass` on the record summarizes them.
    pub audits: Vec<AuditVerdict>,
    /// `true` iff every audit verdict passed.
    pub pass: bool,
}

impl ExperimentRecord {
    /// Creates an empty record for experiment `id`.
    #[must_use]
    pub fn new(id: &str, title: &str) -> ExperimentRecord {
        ExperimentRecord {
            record: "experiment".to_string(),
            id: id.to_string(),
            title: title.to_string(),
            quick: false,
            wall_ms: 0.0,
            params: BTreeMap::new(),
            counters: BTreeMap::new(),
            results: BTreeMap::new(),
            audits: Vec::new(),
            pass: true,
        }
    }

    /// Records an input parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) {
        self.params.insert(key.to_string(), value.to_string());
    }

    /// Records a key result.
    pub fn result(&mut self, key: &str, value: impl ToString) {
        self.results.insert(key.to_string(), value.to_string());
    }

    /// Records an audit verdict and folds it into [`pass`](Self::pass).
    pub fn audit(&mut self, check: &str, pass: bool) {
        self.audits.push(AuditVerdict {
            check: check.to_string(),
            pass,
        });
        self.pass &= pass;
    }

    /// Stores the counter deltas (as produced by
    /// [`Snapshot::delta_since`](crate::Snapshot::delta_since)).
    pub fn set_counters(&mut self, deltas: Vec<(String, u64)>) {
        self.counters = deltas.into_iter().collect();
    }

    /// Returns `true` iff every recorded audit verdict passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.audits.iter().all(|v| v.pass)
    }

    /// Converts the record to a [`JsonValue`] (the schema documented on
    /// the struct fields).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let map = |m: &BTreeMap<String, String>| {
            JsonValue::Object(
                m.iter()
                    .map(|(k, v)| (k.clone(), JsonValue::from(v.clone())))
                    .collect(),
            )
        };
        JsonValue::Object(vec![
            ("record".to_string(), JsonValue::from(self.record.clone())),
            ("id".to_string(), JsonValue::from(self.id.clone())),
            ("title".to_string(), JsonValue::from(self.title.clone())),
            ("quick".to_string(), JsonValue::from(self.quick)),
            ("wall_ms".to_string(), JsonValue::from(self.wall_ms)),
            ("params".to_string(), map(&self.params)),
            (
                "counters".to_string(),
                JsonValue::Object(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::from(v)))
                        .collect(),
                ),
            ),
            ("results".to_string(), map(&self.results)),
            (
                "audits".to_string(),
                JsonValue::Array(
                    self.audits
                        .iter()
                        .map(|v| {
                            JsonValue::Object(vec![
                                ("check".to_string(), JsonValue::from(v.check.clone())),
                                ("pass".to_string(), JsonValue::from(v.pass)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("pass".to_string(), JsonValue::from(self.pass)),
        ])
    }

    /// Serializes the record as one JSON-Lines line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a record back from a JSON-Lines line produced by
    /// [`to_json_line`](Self::to_json_line) (or by serde; the documents
    /// are identical).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] if the text is not valid JSON or does not
    /// match the record schema.
    pub fn from_json_line(line: &str) -> Result<ExperimentRecord, JsonError> {
        let value = JsonValue::parse(line)?;
        let schema_err = |message: &str| JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let string = |key: &str| -> Result<String, JsonError> {
            match value.get(key) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                _ => Err(schema_err(&format!("missing string field {key:?}"))),
            }
        };
        let boolean = |key: &str| -> Result<bool, JsonError> {
            match value.get(key) {
                Some(&JsonValue::Bool(b)) => Ok(b),
                _ => Err(schema_err(&format!("missing bool field {key:?}"))),
            }
        };
        let wall_ms = match value.get("wall_ms") {
            Some(&JsonValue::Float(x)) => x,
            #[allow(clippy::cast_precision_loss)]
            Some(&JsonValue::Int(n)) => n as f64,
            _ => return Err(schema_err("missing number field \"wall_ms\"")),
        };
        let string_map = |key: &str| -> Result<BTreeMap<String, String>, JsonError> {
            match value.get(key) {
                Some(JsonValue::Object(entries)) => entries
                    .iter()
                    .map(|(k, v)| match v {
                        JsonValue::Str(s) => Ok((k.clone(), s.clone())),
                        _ => Err(schema_err(&format!("non-string entry in {key:?}"))),
                    })
                    .collect(),
                _ => Err(schema_err(&format!("missing object field {key:?}"))),
            }
        };
        let counters = match value.get("counters") {
            Some(JsonValue::Object(entries)) => entries
                .iter()
                .map(|(k, v)| match v {
                    &JsonValue::Int(n) if n >= 0 => u64::try_from(n)
                        .map(|n| (k.clone(), n))
                        .map_err(|_| schema_err(&format!("counter {k:?} out of range"))),
                    _ => Err(schema_err(&format!("bad counter entry {k:?}"))),
                })
                .collect::<Result<BTreeMap<String, u64>, JsonError>>()?,
            _ => return Err(schema_err("missing object field \"counters\"")),
        };
        let audits = match value.get("audits") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|item| {
                    let check = match item.get("check") {
                        Some(JsonValue::Str(s)) => s.clone(),
                        _ => return Err(schema_err("audit entry without \"check\"")),
                    };
                    let pass = match item.get("pass") {
                        Some(&JsonValue::Bool(b)) => b,
                        _ => return Err(schema_err("audit entry without \"pass\"")),
                    };
                    Ok(AuditVerdict { check, pass })
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
            _ => return Err(schema_err("missing array field \"audits\"")),
        };
        Ok(ExperimentRecord {
            record: string("record")?,
            id: string("id")?,
            title: string("title")?,
            quick: boolean("quick")?,
            wall_ms,
            params: string_map("params")?,
            counters,
            results: string_map("results")?,
            audits,
            pass: boolean("pass")?,
        })
    }
}

/// Writes [`ExperimentRecord`]s (or raw [`JsonValue`]s) as JSON Lines.
///
/// # Examples
///
/// ```
/// use clos_telemetry::{ExperimentRecord, JsonLinesWriter};
///
/// let mut buf = Vec::new();
/// let mut sink = JsonLinesWriter::new(&mut buf);
/// sink.write_record(&ExperimentRecord::new("e1", "t")).unwrap();
/// sink.write_record(&ExperimentRecord::new("e2", "t")).unwrap();
/// let text = String::from_utf8(buf).unwrap();
/// assert_eq!(text.lines().count(), 2);
/// ```
#[derive(Debug)]
pub struct JsonLinesWriter<W: io::Write> {
    inner: W,
}

impl<W: io::Write> JsonLinesWriter<W> {
    /// Wraps a writer.
    pub fn new(inner: W) -> JsonLinesWriter<W> {
        JsonLinesWriter { inner }
    }

    /// Writes one record as one line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_record(&mut self, record: &ExperimentRecord) -> io::Result<()> {
        self.write_value(&record.to_json())
    }

    /// Writes one raw JSON value as one line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write_value(&mut self, value: &JsonValue) -> io::Result<()> {
        writeln!(self.inner, "{value}")
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentRecord {
        let mut rec = ExperimentRecord::new("e5", "Doom-Switch doubles throughput");
        rec.quick = true;
        rec.wall_ms = 12.75;
        rec.param("pairs", "[(3, 4), (7, 16)]");
        rec.result("gain n=7 k=16", "33/17");
        rec.set_counters(vec![
            ("waterfill.rounds".to_string(), 42),
            ("search.assignments".to_string(), 7),
        ]);
        rec.audit("upper bound t_doom <= 2 t_macro", true);
        rec.audit("lower bound t_doom >= n - 2", true);
        rec
    }

    #[test]
    fn own_encoder_round_trips() {
        let rec = sample();
        let line = rec.to_json_line();
        assert!(!line.contains('\n'));
        assert_eq!(ExperimentRecord::from_json_line(&line).unwrap(), rec);
    }

    #[test]
    fn failed_audit_clears_pass() {
        let mut rec = sample();
        assert!(rec.pass && rec.all_pass());
        rec.audit("T <= T^MT", false);
        assert!(!rec.pass);
        assert!(!rec.all_pass());
        let parsed = ExperimentRecord::from_json_line(&rec.to_json_line()).unwrap();
        assert!(!parsed.pass);
        assert_eq!(parsed.audits.len(), 3);
    }

    #[test]
    fn schema_violations_rejected() {
        for bad in [
            "[]",
            "{}",
            r#"{"record":"experiment"}"#,
            r#"{"record":"experiment","id":"e1","title":"t","quick":true,"wall_ms":"fast","params":{},"counters":{},"results":{},"audits":[],"pass":true}"#,
            r#"{"record":"experiment","id":"e1","title":"t","quick":true,"wall_ms":1,"params":{},"counters":{"c":-1},"results":{},"audits":[],"pass":true}"#,
            r#"{"record":"experiment","id":"e1","title":"t","quick":true,"wall_ms":1,"params":{},"counters":{},"results":{},"audits":[{"check":"x"}],"pass":true}"#,
        ] {
            assert!(ExperimentRecord::from_json_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn integer_wall_ms_accepted() {
        let line = r#"{"record":"experiment","id":"e1","title":"t","quick":false,"wall_ms":3,"params":{},"counters":{},"results":{},"audits":[],"pass":true}"#;
        let rec = ExperimentRecord::from_json_line(line).unwrap();
        assert!((rec.wall_ms - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn writer_emits_one_line_per_record() {
        let mut buf = Vec::new();
        let mut sink = JsonLinesWriter::new(&mut buf);
        sink.write_record(&sample()).unwrap();
        sink.write_record(&sample()).unwrap();
        sink.finish().unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(ExperimentRecord::from_json_line(line).is_ok());
        }
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_round_trips_and_matches_own_encoder() {
        let rec = sample();
        // serde → serde.
        let serde_line = serde_json::to_string(&rec).unwrap();
        let back: ExperimentRecord = serde_json::from_str(&serde_line).unwrap();
        assert_eq!(back, rec);
        // Own encoder → serde, and the two documents are identical.
        let own_line = rec.to_json_line();
        let back: ExperimentRecord = serde_json::from_str(&own_line).unwrap();
        assert_eq!(back, rec);
        assert_eq!(own_line, serde_line);
    }
}
