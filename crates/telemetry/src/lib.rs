//! Instrumentation for the clos-routing workspace: scoped wall-clock
//! timers, atomic counters, and machine-readable experiment reports.
//!
//! # The enable/disable model
//!
//! All instrumentation is **off by default** and controlled by one global
//! flag, [`set_enabled`]. Every hot-path hook ([`Counter::add`],
//! [`Timer::scope`]) first reads that flag with a single relaxed atomic
//! load and returns immediately when it is off — no allocation, no lock,
//! no clock read. Library callers that never call `set_enabled(true)`
//! therefore pay one predictable-branch load per instrumented event and
//! nothing else; this is the crate's zero-overhead-when-off guarantee
//! (validated by the `waterfill` and `routers` benches staying within
//! noise of their pre-instrumentation numbers).
//!
//! When enabled, counters accumulate with relaxed atomic adds and timers
//! with one `Instant` pair per scope, so even the "on" mode is cheap
//! enough for the workspace's exhaustive searches.
//!
//! # What is instrumented
//!
//! Every counter and timer is a `static` registered in [`counters`] and
//! [`timers`]; [`Snapshot::take`] captures them all, and
//! [`Snapshot::delta_since`] yields the per-experiment deltas the `repro`
//! binary embeds in its reports:
//!
//! * water-filling: calls, freezing rounds, link saturation events;
//! * simplex: solves, pivots, degenerate pivots;
//! * Hopcroft–Karp: calls, BFS phases, augmenting paths;
//! * König coloring: calls, edge passes, alternating-path flips;
//! * routing-objective searches: runs, canonical assignments enumerated,
//!   incumbent improvements.
//!
//! # Machine-readable reports
//!
//! [`ExperimentRecord`] is the schema of one JSON-Lines record per
//! experiment (id, parameters, wall time, counter deltas, key results,
//! audit verdicts). It serializes through the dependency-free encoder in
//! [`json`] ([`ExperimentRecord::to_json_line`]) and, with the `serde`
//! feature (default), also derives `serde::Serialize`/`Deserialize`
//! producing the identical structure, so downstream tooling can use
//! either path.
//!
//! # Examples
//!
//! ```
//! use clos_telemetry::{counters, set_enabled, Snapshot};
//!
//! set_enabled(true);
//! let before = Snapshot::take();
//! counters::WATERFILL_ROUNDS.add(3);
//! let delta = Snapshot::take().delta_since(&before);
//! assert_eq!(delta, vec![("waterfill.rounds".to_string(), 3)]);
//! # clos_telemetry::set_enabled(false);
//! ```

pub mod json;
mod registry;
mod report;
pub mod span;

pub use crate::registry::{
    counters, enabled, set_enabled, timers, Counter, Snapshot, Timer, TimerGuard,
};
pub use crate::report::{AuditVerdict, ExperimentRecord, JsonLinesWriter};
pub use crate::span::{
    reset_tracing, set_tracing, span, span_root, take_trace, tracing_enabled, SpanGuard, SpanTree,
};
