//! A dependency-free JSON value: encoder and strict parser.
//!
//! This is the serialization backend for [`ExperimentRecord`] when the
//! `serde` feature is off (and the reference implementation the serde
//! derives are checked against). It supports exactly the JSON the
//! workspace emits: UTF-8 text, objects with insertion-ordered keys,
//! finite numbers (non-finite floats encode as `null`).
//!
//! [`ExperimentRecord`]: crate::ExperimentRecord

use std::error::Error;
use std::fmt;

/// A JSON document node.
///
/// # Examples
///
/// ```
/// use clos_telemetry::json::JsonValue;
///
/// let v = JsonValue::Object(vec![
///     ("id".to_string(), JsonValue::from("e1")),
///     ("pass".to_string(), JsonValue::from(true)),
///     ("wall_ms".to_string(), JsonValue::from(1.5)),
/// ]);
/// let text = v.to_string();
/// assert_eq!(text, r#"{"id":"e1","pass":true,"wall_ms":1.5}"#);
/// assert_eq!(JsonValue::parse(&text).unwrap(), v);
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (no decimal point or exponent in the source text).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys keep their insertion order.
    Object(Vec<(String, JsonValue)>),
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> JsonValue {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> JsonValue {
        JsonValue::Str(s)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> JsonValue {
        JsonValue::Bool(b)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> JsonValue {
        JsonValue::Int(i128::from(n))
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> JsonValue {
        JsonValue::Int(i128::from(n))
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> JsonValue {
        JsonValue::Int(n as i128)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> JsonValue {
        JsonValue::Float(x)
    }
}

impl JsonValue {
    /// Returns the object entry for `key`, if this is an object containing
    /// it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
        f.write_str("\"")?;
        for c in s.chars() {
            match c {
                '"' => f.write_str("\\\"")?,
                '\\' => f.write_str("\\\\")?,
                '\n' => f.write_str("\\n")?,
                '\r' => f.write_str("\\r")?,
                '\t' => f.write_str("\\t")?,
                c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                c => write!(f, "{c}")?,
            }
        }
        f.write_str("\"")
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(n) => write!(f, "{n}"),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // `{:?}` prints the shortest representation that parses
                    // back to the same f64, always with `.0`/exponent so it
                    // stays a float in JSON terms.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            JsonValue::Str(s) => JsonValue::write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    JsonValue::write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// The error returned by [`JsonValue::parse`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonError {
    /// Byte offset of the problem in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", expected as char))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            self.err(format!("expected {literal:?}"))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat_literal("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.parse_string().map(JsonValue::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are not needed for the
                                // ASCII-escaped output this crate produces.
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the remaining text.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| JsonError {
                            offset: self.pos,
                            message: "invalid UTF-8".to_string(),
                        })?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if is_float {
            match text.parse::<f64>() {
                Ok(x) => Ok(JsonValue::Float(x)),
                Err(_) => self.err(format!("bad number {text:?}")),
            }
        } else {
            match text.parse::<i128>() {
                Ok(n) => Ok(JsonValue::Int(n)),
                Err(_) => self.err(format!("bad integer {text:?}")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

impl JsonValue {
    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] locating the first malformed byte.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing characters");
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "42"] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        assert_eq!(JsonValue::parse("1.5").unwrap(), JsonValue::Float(1.5));
        assert_eq!(JsonValue::Float(1.5).to_string(), "1.5");
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(JsonValue::Float(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let cases = [
            ("plain", "\"plain\""),
            ("with \"quotes\"", "\"with \\\"quotes\\\"\""),
            ("back\\slash", "\"back\\\\slash\""),
            ("line\nbreak\ttab", "\"line\\nbreak\\ttab\""),
            ("unicode →", "\"unicode →\""),
        ];
        for (raw, encoded) in cases {
            let v = JsonValue::from(raw);
            assert_eq!(v.to_string(), encoded);
            assert_eq!(JsonValue::parse(encoded).unwrap(), v);
        }
        // Control characters use \u escapes.
        assert_eq!(JsonValue::from("\u{1}").to_string(), "\"\\u0001\"");
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u2192\"").unwrap(),
            JsonValue::from("A→")
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,null,{"b":true}],"c":"d","e":{}}"#;
        let v = JsonValue::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("c"), Some(&JsonValue::from("d")));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("a"), None);
    }

    #[test]
    fn whitespace_tolerated() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } \n").unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,2],"b":null}"#);
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1,]",
            "\"\\u12\"",
            "\"\\q\"",
        ] {
            let err = JsonValue::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "no message for {bad:?}");
        }
    }

    #[test]
    fn large_integers_stay_exact() {
        let n = u64::MAX;
        let v = JsonValue::from(n);
        assert_eq!(v.to_string(), n.to_string());
        assert_eq!(JsonValue::parse(&n.to_string()).unwrap(), v);
    }
}
