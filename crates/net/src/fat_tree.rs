//! k-ary fat-trees with configurable edge-layer oversubscription.

#![allow(clippy::needless_range_loop)]

use clos_rational::Rational;
use clos_telemetry::counters;

use crate::{Capacity, CapacityMap, Fabric, Flow, LinkId, Network, NodeId, NodeKind, Path};

/// Where a node sits within a fat-tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FtNodeLoc {
    Source { group: usize, host: usize },
    Switch,
    Destination { group: usize, host: usize },
}

/// Where a link sits within a fat-tree (full mode only records what
/// class identification needs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FtLinkLoc {
    Other,
    /// in-agg(p, g) -> core(g, j); identifies routing class `g*(k/2)+j`.
    AggUp {
        group: usize,
        core: usize,
    },
    /// Collapsed mode: pod switch -> core `m`.
    Up {
        core: usize,
    },
}

/// Per-mode link tables.
#[derive(Clone, Debug)]
enum Mode {
    /// The unfolded three-tier fat-tree: edge, aggregation, core.
    Full {
        /// in-edge(ge) -> in-agg(pod(ge), g), indexed `[ge][g]`.
        edge_up: Vec<Vec<LinkId>>,
        /// in-agg(p, g) -> core(g, j), indexed `[p][g][j]`.
        agg_up: Vec<Vec<Vec<LinkId>>>,
        /// core(g, j) -> out-agg(p, g), indexed `[g][j][p]`.
        core_down: Vec<Vec<Vec<LinkId>>>,
        /// out-agg(pod(ge), g) -> out-edge(ge), indexed `[ge][g]`.
        edge_down: Vec<Vec<LinkId>>,
    },
    /// Edge and aggregation merged into one pod switch per side; exactly
    /// the three-stage Clos construction.
    Collapsed {
        /// pod switch `i` -> core `m`, indexed `[i][m]`.
        up: Vec<Vec<LinkId>>,
        /// core `m` -> pod switch `i`, indexed `[m][i]`.
        down: Vec<Vec<LinkId>>,
    },
}

/// A `k`-ary fat-tree (Dai, Dinitz, Foerster, Luo & Schmid,
/// arXiv 2401.04638), unfolded into a directed source→destination
/// fabric like the paper's Clos unfolding.
///
/// `k` pods each hold `k/2` edge and `k/2` aggregation switches per
/// direction; `(k/2)^2` core switches come in `k/2` groups of `k/2`,
/// group `g` reachable only through aggregation switch `g` of each pod.
/// Every source pins to one input edge switch (its *group* coordinate is
/// the pod-global edge index `p*(k/2)+e`), and a candidate path has six
/// links: host → edge → aggregation → core → aggregation → edge → host.
/// Routing class `c = g*(k/2)+j` names core `j` of group `g`, so there
/// are `(k/2)^2` classes.
///
/// **Oversubscription** `rho: 1` scales every edge↔aggregation link down
/// to `link_capacity / rho` while host and aggregation↔core links keep
/// the full `link_capacity` — the classic under-provisioned edge layer.
///
/// [`FatTree::collapsed`] instead merges each pod's edge and aggregation
/// layers into a single pod switch (valid only at 1:1): the result *is*
/// the three-stage Clos network with `(k/2)^2` middles, `k` ToR pairs
/// and `(k/2)^2` hosts per ToR, built in the identical node/link
/// insertion order so the two networks compare equal and searches over
/// them are byte-identical. No such equivalence exists for the full
/// fat-tree even at 1:1 — concentrating flows of one edge switch onto
/// its shared edge→aggregation links yields rate vectors no Clos
/// reproduces — which is exactly why the oversubscribed experiments need
/// the real topology.
///
/// # Examples
///
/// ```
/// use clos_net::{Fabric, FatTree, Flow};
/// use clos_rational::Rational;
///
/// let ft = FatTree::new(4, Rational::TWO); // 2:1 oversubscribed
/// assert_eq!(ft.class_count(), 4);
/// let f = Flow::new(ft.source(0, 1), ft.destination(7, 0));
/// let p = ft.path_via_class(f, 3);
/// assert_eq!(p.len(), 6);
/// assert!(p.is_valid(ft.network(), f).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct FatTree {
    net: Network,
    k: usize,
    oversubscription: Rational,
    link_capacity: Rational,
    /// `[group][host]`; groups are pod-global edge indices in full mode,
    /// pod indices in collapsed mode.
    sources: Vec<Vec<NodeId>>,
    destinations: Vec<Vec<NodeId>>,
    host_uplinks: Vec<Vec<LinkId>>,
    host_downlinks: Vec<Vec<LinkId>>,
    mode: Mode,
    node_locs: Vec<FtNodeLoc>,
    link_locs: Vec<FtLinkLoc>,
}

impl FatTree {
    /// Builds the full `k`-ary fat-tree with unit base capacity and the
    /// given oversubscription ratio.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2, or `oversubscription < 1`.
    #[must_use]
    pub fn new(k: usize, oversubscription: Rational) -> FatTree {
        FatTree::with_capacity(k, oversubscription, Rational::ONE)
    }

    /// Builds the full `k`-ary fat-tree with the given base link
    /// capacity; edge↔aggregation links get `link_capacity /
    /// oversubscription`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2, `oversubscription < 1`, or
    /// the capacity is non-positive.
    #[must_use]
    pub fn with_capacity(k: usize, oversubscription: Rational, link_capacity: Rational) -> FatTree {
        FatTree::validate(k, oversubscription, link_capacity);
        let half = k / 2;
        let cap = Capacity::finite_value(link_capacity);
        let edge_cap = Capacity::finite_value(link_capacity / oversubscription);
        let groups = k * half; // pod-global edge switches per side
        let hosts = half;

        let mut net = Network::new();
        let mut node_locs = Vec::new();
        let mut link_locs = Vec::new();

        let mut sources = Vec::with_capacity(groups);
        for ge in 0..groups {
            let mut row = Vec::with_capacity(hosts);
            for h in 0..hosts {
                row.push(net.add_node(NodeKind::Source, format!("s_{ge}^{h}")));
                node_locs.push(FtNodeLoc::Source { group: ge, host: h });
            }
            sources.push(row);
        }
        let mut in_edges = Vec::with_capacity(groups);
        for ge in 0..groups {
            in_edges.push(net.add_node(NodeKind::InputTor, format!("IE_{ge}")));
            node_locs.push(FtNodeLoc::Switch);
        }
        let mut in_aggs = Vec::with_capacity(k);
        for p in 0..k {
            let mut row = Vec::with_capacity(half);
            for g in 0..half {
                row.push(net.add_node(NodeKind::Middle, format!("IA_{p}.{g}")));
                node_locs.push(FtNodeLoc::Switch);
            }
            in_aggs.push(row);
        }
        let mut cores = Vec::with_capacity(half);
        for g in 0..half {
            let mut row = Vec::with_capacity(half);
            for j in 0..half {
                row.push(net.add_node(NodeKind::Middle, format!("C_{g}.{j}")));
                node_locs.push(FtNodeLoc::Switch);
            }
            cores.push(row);
        }
        let mut out_aggs = Vec::with_capacity(k);
        for p in 0..k {
            let mut row = Vec::with_capacity(half);
            for g in 0..half {
                row.push(net.add_node(NodeKind::Middle, format!("OA_{p}.{g}")));
                node_locs.push(FtNodeLoc::Switch);
            }
            out_aggs.push(row);
        }
        let mut out_edges = Vec::with_capacity(groups);
        for ge in 0..groups {
            out_edges.push(net.add_node(NodeKind::OutputTor, format!("OE_{ge}")));
            node_locs.push(FtNodeLoc::Switch);
        }
        let mut destinations = Vec::with_capacity(groups);
        for ge in 0..groups {
            let mut row = Vec::with_capacity(hosts);
            for h in 0..hosts {
                row.push(net.add_node(NodeKind::Destination, format!("t_{ge}^{h}")));
                node_locs.push(FtNodeLoc::Destination { group: ge, host: h });
            }
            destinations.push(row);
        }

        let mut host_uplinks = Vec::with_capacity(groups);
        for ge in 0..groups {
            let mut row = Vec::with_capacity(hosts);
            for h in 0..hosts {
                row.push(FatTree::link(&mut net, sources[ge][h], in_edges[ge], cap));
                link_locs.push(FtLinkLoc::Other);
            }
            host_uplinks.push(row);
        }
        let mut edge_up = Vec::with_capacity(groups);
        for ge in 0..groups {
            let p = ge / half;
            let mut row = Vec::with_capacity(half);
            for g in 0..half {
                row.push(FatTree::link(
                    &mut net,
                    in_edges[ge],
                    in_aggs[p][g],
                    edge_cap,
                ));
                link_locs.push(FtLinkLoc::Other);
            }
            edge_up.push(row);
        }
        let mut agg_up = Vec::with_capacity(k);
        for p in 0..k {
            let mut rows = Vec::with_capacity(half);
            for g in 0..half {
                let mut row = Vec::with_capacity(half);
                for j in 0..half {
                    row.push(FatTree::link(&mut net, in_aggs[p][g], cores[g][j], cap));
                    link_locs.push(FtLinkLoc::AggUp { group: g, core: j });
                }
                rows.push(row);
            }
            agg_up.push(rows);
        }
        let mut core_down = Vec::with_capacity(half);
        for g in 0..half {
            let mut rows = Vec::with_capacity(half);
            for j in 0..half {
                let mut row = Vec::with_capacity(k);
                for p in 0..k {
                    row.push(FatTree::link(&mut net, cores[g][j], out_aggs[p][g], cap));
                    link_locs.push(FtLinkLoc::Other);
                }
                rows.push(row);
            }
            core_down.push(rows);
        }
        let mut edge_down = Vec::with_capacity(groups);
        for ge in 0..groups {
            let p = ge / half;
            let mut row = Vec::with_capacity(half);
            for g in 0..half {
                row.push(FatTree::link(
                    &mut net,
                    out_aggs[p][g],
                    out_edges[ge],
                    edge_cap,
                ));
                link_locs.push(FtLinkLoc::Other);
            }
            edge_down.push(row);
        }
        let mut host_downlinks = Vec::with_capacity(groups);
        for ge in 0..groups {
            let mut row = Vec::with_capacity(hosts);
            for h in 0..hosts {
                row.push(FatTree::link(
                    &mut net,
                    out_edges[ge],
                    destinations[ge][h],
                    cap,
                ));
                link_locs.push(FtLinkLoc::Other);
            }
            host_downlinks.push(row);
        }

        counters::TOPOLOGY_BUILDS.incr();
        counters::FABRIC_CLASSES.add((half * half) as u64);

        FatTree {
            net,
            k,
            oversubscription,
            link_capacity,
            sources,
            destinations,
            host_uplinks,
            host_downlinks,
            mode: Mode::Full {
                edge_up,
                agg_up,
                core_down,
                edge_down,
            },
            node_locs,
            link_locs,
        }
    }

    /// Builds the **collapsed** `k`-ary fat-tree with unit capacity:
    /// each pod's edge and aggregation layers merge into one pod switch,
    /// yielding exactly the three-stage Clos network with `(k/2)^2`
    /// middle switches, `k` ToR pairs, and `(k/2)^2` hosts per ToR — in
    /// the identical insertion order, so the underlying [`Network`]s
    /// compare equal. Only valid at 1:1 oversubscription (the collapse
    /// erases the edge↔aggregation links the ratio would scale).
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2.
    #[must_use]
    pub fn collapsed(k: usize) -> FatTree {
        FatTree::collapsed_with_capacity(k, Rational::ONE)
    }

    /// Builds the collapsed fat-tree with the given uniform capacity.
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd or less than 2, or the capacity is
    /// non-positive.
    #[must_use]
    pub fn collapsed_with_capacity(k: usize, link_capacity: Rational) -> FatTree {
        FatTree::validate(k, Rational::ONE, link_capacity);
        let half = k / 2;
        let cap = Capacity::finite_value(link_capacity);
        let middles_n = half * half;
        let hosts = half * half;

        let mut net = Network::new();
        let mut node_locs = Vec::new();
        let mut link_locs = Vec::new();

        // Node and link insertion mirror ClosNetwork::with_params
        // byte-for-byte (labels included) so `Network` equality holds.
        let mut sources = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = Vec::with_capacity(hosts);
            for j in 0..hosts {
                row.push(net.add_node(NodeKind::Source, format!("s_{i}^{j}")));
                node_locs.push(FtNodeLoc::Source { group: i, host: j });
            }
            sources.push(row);
        }
        let mut pods_in = Vec::with_capacity(k);
        for i in 0..k {
            pods_in.push(net.add_node(NodeKind::InputTor, format!("I_{i}")));
            node_locs.push(FtNodeLoc::Switch);
        }
        let mut middles = Vec::with_capacity(middles_n);
        for m in 0..middles_n {
            middles.push(net.add_node(NodeKind::Middle, format!("M_{m}")));
            node_locs.push(FtNodeLoc::Switch);
        }
        let mut pods_out = Vec::with_capacity(k);
        for i in 0..k {
            pods_out.push(net.add_node(NodeKind::OutputTor, format!("O_{i}")));
            node_locs.push(FtNodeLoc::Switch);
        }
        let mut destinations = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = Vec::with_capacity(hosts);
            for j in 0..hosts {
                row.push(net.add_node(NodeKind::Destination, format!("t_{i}^{j}")));
                node_locs.push(FtNodeLoc::Destination { group: i, host: j });
            }
            destinations.push(row);
        }

        let mut host_uplinks = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = Vec::with_capacity(hosts);
            for j in 0..hosts {
                row.push(FatTree::link(&mut net, sources[i][j], pods_in[i], cap));
                link_locs.push(FtLinkLoc::Other);
            }
            host_uplinks.push(row);
        }
        let mut up = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = Vec::with_capacity(middles_n);
            for m in 0..middles_n {
                row.push(FatTree::link(&mut net, pods_in[i], middles[m], cap));
                link_locs.push(FtLinkLoc::Up { core: m });
            }
            up.push(row);
        }
        let mut down = Vec::with_capacity(middles_n);
        for m in 0..middles_n {
            let mut row = Vec::with_capacity(k);
            for i in 0..k {
                row.push(FatTree::link(&mut net, middles[m], pods_out[i], cap));
                link_locs.push(FtLinkLoc::Other);
            }
            down.push(row);
        }
        let mut host_downlinks = Vec::with_capacity(k);
        for i in 0..k {
            let mut row = Vec::with_capacity(hosts);
            for j in 0..hosts {
                row.push(FatTree::link(
                    &mut net,
                    pods_out[i],
                    destinations[i][j],
                    cap,
                ));
                link_locs.push(FtLinkLoc::Other);
            }
            host_downlinks.push(row);
        }

        counters::TOPOLOGY_BUILDS.incr();
        counters::FABRIC_CLASSES.add(middles_n as u64);

        FatTree {
            net,
            k,
            oversubscription: Rational::ONE,
            link_capacity,
            sources,
            destinations,
            host_uplinks,
            host_downlinks,
            mode: Mode::Collapsed { up, down },
            node_locs,
            link_locs,
        }
    }

    fn validate(k: usize, oversubscription: Rational, link_capacity: Rational) {
        assert!(k >= 2, "fat-tree arity must be at least 2");
        assert!(k.is_multiple_of(2), "fat-tree arity must be even");
        assert!(
            oversubscription >= Rational::ONE,
            "oversubscription ratio must be at least 1:1"
        );
        assert!(
            link_capacity.is_positive(),
            "link capacity must be positive"
        );
    }

    fn link(net: &mut Network, src: NodeId, dst: NodeId, cap: Capacity) -> LinkId {
        match net.add_link(src, dst, cap) {
            Ok(e) => e,
            Err(_) => unreachable!("endpoints exist by construction"),
        }
    }

    /// Returns the arity `k`.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.k
    }

    /// Returns the oversubscription ratio (always 1 in collapsed mode).
    #[must_use]
    pub fn oversubscription(&self) -> Rational {
        self.oversubscription
    }

    /// Returns `true` for the collapsed (Clos-equivalent) variant.
    #[must_use]
    pub fn is_collapsed(&self) -> bool {
        matches!(self.mode, Mode::Collapsed { .. })
    }

    /// Number of source groups: pod-global edge switches (`k^2/2`) in
    /// full mode, pods (`k`) in collapsed mode.
    #[must_use]
    pub fn group_count(&self) -> usize {
        self.sources.len()
    }

    /// Hosts per source group: `k/2` in full mode, `(k/2)^2` collapsed.
    #[must_use]
    pub fn hosts_per_group(&self) -> usize {
        self.sources[0].len()
    }

    /// Returns the source server at `(group, host)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn source(&self, group: usize, host: usize) -> NodeId {
        self.sources[group][host]
    }

    /// Returns the destination server at `(group, host)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn destination(&self, group: usize, host: usize) -> NodeId {
        self.destinations[group][host]
    }
}

impl Fabric for FatTree {
    fn network(&self) -> &Network {
        &self.net
    }

    fn class_count(&self) -> usize {
        (self.k / 2) * (self.k / 2)
    }

    fn append_links_via(&self, flow: Flow, class: usize, out: &mut Vec<LinkId>) {
        assert!(
            class < self.class_count(),
            "routing class {class} out of range (have {})",
            self.class_count()
        );
        let Some((ga, ha)) = Fabric::source_coords(self, flow.src()) else {
            panic!("node {} is not a {}", flow.src(), NodeKind::Source);
        };
        let Some((gb, hb)) = Fabric::destination_coords(self, flow.dst()) else {
            panic!("node {} is not a {}", flow.dst(), NodeKind::Destination);
        };
        out.push(self.host_uplinks[ga][ha]);
        match &self.mode {
            Mode::Full {
                edge_up,
                agg_up,
                core_down,
                edge_down,
            } => {
                let half = self.k / 2;
                let (g, j) = (class / half, class % half);
                let (pa, pb) = (ga / half, gb / half);
                out.push(edge_up[ga][g]);
                out.push(agg_up[pa][g][j]);
                out.push(core_down[g][j][pb]);
                out.push(edge_down[gb][g]);
            }
            Mode::Collapsed { up, down } => {
                out.push(up[ga][class]);
                out.push(down[class][gb]);
            }
        }
        out.push(self.host_downlinks[gb][hb]);
    }

    fn class_of_path(&self, path: &Path) -> Option<usize> {
        let half = self.k / 2;
        for &e in path.links() {
            match self.link_locs.get(e.index()) {
                Some(&FtLinkLoc::AggUp { group, core }) => return Some(group * half + core),
                Some(&FtLinkLoc::Up { core }) => return Some(core),
                _ => {}
            }
        }
        None
    }

    fn source_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        match self.node_locs.get(node.index()) {
            Some(&FtNodeLoc::Source { group, host }) => Some((group, host)),
            _ => None,
        }
    }

    fn destination_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        match self.node_locs.get(node.index()) {
            Some(&FtNodeLoc::Destination { group, host }) => Some((group, host)),
            _ => None,
        }
    }

    fn class_signature(&self, class: usize) -> (usize, Vec<Capacity>) {
        assert!(
            class < self.class_count(),
            "routing class {class} out of range (have {})",
            self.class_count()
        );
        match &self.mode {
            Mode::Full {
                agg_up, core_down, ..
            } => {
                // Cores of one group are exchangeable by relabeling
                // (swapping cores j1, j2 of group g fixes every class of
                // the other groups); cross-group swaps would move other
                // classes' aggregation hops, so the group is a structural
                // tag. An exchange must preserve the swapped cores'
                // incident capacities, listed up-by-pod then down-by-pod
                // — the analogue of the Clos uplink/downlink order.
                let half = self.k / 2;
                let (g, j) = (class / half, class % half);
                let caps = (0..self.k)
                    .map(|p| self.net.link(agg_up[p][g][j]).capacity())
                    .chain((0..self.k).map(|p| self.net.link(core_down[g][j][p]).capacity()))
                    .collect();
                (g, caps)
            }
            Mode::Collapsed { up, down } => {
                // Exactly the Clos signature: all cores are symmetric.
                let caps = (0..self.k)
                    .map(|i| self.net.link(up[i][class]).capacity())
                    .chain((0..self.k).map(|i| self.net.link(down[class][i]).capacity()))
                    .collect();
                (0, caps)
            }
        }
    }

    fn with_capacities(&self, overlay: &CapacityMap) -> FatTree {
        let mut out = self.clone();
        for (&link, &capacity) in overlay {
            out.net.set_link_capacity(link, capacity);
        }
        out
    }

    fn nominal_capacity(&self) -> Rational {
        self.link_capacity
    }

    fn max_path_len(&self) -> usize {
        if self.is_collapsed() {
            4
        } else {
            6
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mode_counts() {
        let ft = FatTree::new(4, Rational::ONE);
        // 16 hosts/side, 8 edges/side, 8 aggs/side, 4 cores.
        assert_eq!(ft.net.node_count(), 2 * 16 + 2 * 8 + 2 * 8 + 4);
        // 16 host + 16 edge-agg + 16 agg-core links per side.
        assert_eq!(ft.net.link_count(), 2 * (16 + 16 + 16));
        assert_eq!(ft.class_count(), 4);
        assert_eq!(ft.group_count(), 8);
        assert_eq!(ft.hosts_per_group(), 2);
        assert_eq!(ft.max_path_len(), 6);
    }

    #[test]
    fn every_candidate_path_is_valid_with_shared_host_links() {
        let ft = FatTree::new(4, Rational::TWO);
        for ga in 0..8 {
            for gb in 0..8 {
                let f = Flow::new(ft.source(ga, 1), ft.destination(gb, 0));
                let paths = ft.candidate_paths(f);
                assert_eq!(paths.len(), 4);
                for (c, p) in paths.iter().enumerate() {
                    assert!(p.is_valid(ft.network(), f).is_ok(), "ga={ga} gb={gb} c={c}");
                    assert_eq!(p.len(), 6);
                    assert_eq!(ft.class_of_path(p), Some(c));
                    assert_eq!(p.links()[0], paths[0].links()[0]);
                    assert_eq!(p.links()[5], paths[0].links()[5]);
                }
            }
        }
    }

    #[test]
    fn oversubscription_scales_only_edge_layer() {
        let ft = FatTree::new(4, Rational::TWO);
        let f = Flow::new(ft.source(0, 0), ft.destination(5, 1));
        let p = ft.path_via_class(f, 2);
        let caps: Vec<_> = p
            .links()
            .iter()
            .map(|&e| ft.net.link(e).capacity())
            .collect();
        let half_cap = Capacity::finite_value(Rational::new(1, 2));
        assert_eq!(
            caps,
            vec![
                Capacity::unit(), // host up
                half_cap,         // edge -> agg
                Capacity::unit(), // agg -> core
                Capacity::unit(), // core -> agg
                half_cap,         // agg -> edge
                Capacity::unit(), // host down
            ]
        );
    }

    #[test]
    fn signatures_group_within_core_groups_only() {
        let ft = FatTree::new(4, Rational::TWO);
        // Classes 0,1 (group 0) and 2,3 (group 1) are internally
        // symmetric but not across groups.
        assert_eq!(ft.class_signature(0), ft.class_signature(1));
        assert_eq!(ft.class_signature(2), ft.class_signature(3));
        assert_ne!(ft.class_signature(0), ft.class_signature(2));
    }

    #[test]
    fn collapsed_mode_is_clos_shaped() {
        let ft = FatTree::collapsed(4);
        assert!(ft.is_collapsed());
        assert_eq!(ft.group_count(), 4);
        assert_eq!(ft.hosts_per_group(), 4);
        assert_eq!(ft.class_count(), 4);
        assert_eq!(ft.max_path_len(), 4);
        let f = Flow::new(ft.source(0, 3), ft.destination(2, 1));
        for c in 0..4 {
            let p = ft.path_via_class(f, c);
            assert_eq!(p.len(), 4);
            assert!(p.is_valid(ft.network(), f).is_ok());
            assert_eq!(ft.class_of_path(&p), Some(c));
        }
        assert_eq!(ft.class_signature(1), ft.class_signature(3));
    }

    #[test]
    fn collapsed_network_equals_clos() {
        use crate::{ClosNetwork, ClosParams};
        let ft = FatTree::collapsed(4);
        let clos = ClosNetwork::with_params(ClosParams {
            middle_switches: 4,
            tor_pairs: 4,
            hosts_per_tor: 4,
            link_capacity: Rational::ONE,
        });
        assert_eq!(ft.network(), clos.network());
        // Candidate paths agree link-for-link under matching coords.
        let f_ft = Flow::new(ft.source(1, 2), ft.destination(3, 0));
        let f_clos = Flow::new(clos.source(1, 2), clos.destination(3, 0));
        assert_eq!(f_ft, f_clos);
        for c in 0..4 {
            assert_eq!(ft.path_via_class(f_ft, c), clos.path_via(f_clos, c));
        }
    }

    #[test]
    fn coords_round_trip_and_reject_switches() {
        let ft = FatTree::new(4, Rational::ONE);
        assert_eq!(Fabric::source_coords(&ft, ft.source(6, 1)), Some((6, 1)));
        assert_eq!(
            Fabric::destination_coords(&ft, ft.destination(2, 0)),
            Some((2, 0))
        );
        let core = ft.net.nodes_of_kind(NodeKind::Middle)[0];
        assert_eq!(Fabric::source_coords(&ft, core), None);
        assert_eq!(Fabric::destination_coords(&ft, ft.source(0, 0)), None);
    }

    #[test]
    #[should_panic(expected = "oversubscription")]
    fn undersubscription_rejected() {
        let _ = FatTree::new(4, Rational::new(1, 2));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_arity_rejected() {
        let _ = FatTree::new(3, Rational::ONE);
    }
}
