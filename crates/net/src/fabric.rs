//! The multi-stage fabric abstraction behind every topology.
//!
//! The paper proves its impossibility results on three-stage Clos
//! fabrics, where routing a flow is exactly one middle-switch choice.
//! Every layer above `clos-net` — the exhaustive searches, the compiled
//! waterfill evaluation, the churn engine, the routing heuristics —
//! needs only a weaker contract than "Clos": a finite menu of candidate
//! paths per flow, indexed by a **routing class** that plays the role
//! of the middle index. [`Fabric`] captures that contract so the same
//! engines run unchanged over [`ClosNetwork`], the rearrangeably
//! non-blocking [`BenesNetwork`] (Huang & Walrand, arXiv 1208.0561),
//! and oversubscribed [`FatTree`] fabrics (cf. Dai, Dinitz, Foerster,
//! Luo & Schmid, arXiv 2401.04638).
//!
//! # Routing classes
//!
//! A fabric exposes `class_count()` routing classes. For every flow,
//! class `c` names one candidate path (`path_via`/`append_links_via`),
//! and an unsplittable routing is one class choice per flow — exactly
//! the paper's "routing = middle choice" once `ClosNetwork` maps class
//! `c` to middle switch `c`. Class menus are *global*: every flow has
//! the same class count, so a routing is a dense `Vec<usize>` and the
//! search engines can enumerate class vectors without per-flow tables.
//! Candidate paths may have different lengths across fabrics (4 links
//! on Clos, `2r` on a Benes of order `r`, 6 on a fat-tree), and the
//! compiled pipeline stores them CSR-style rather than as fixed quads.
//!
//! # Path shape contract
//!
//! Implementors guarantee, for every flow between a [`NodeKind::Source`]
//! and a [`NodeKind::Destination`] of the fabric:
//!
//! * every class yields a valid path (`Path::is_valid`) from the flow's
//!   source to its destination;
//! * the **first and last links are class-independent**: they are the
//!   flow's host access links, shared by all candidate paths (the
//!   engines use them for host-capacity bounds and liveness checks);
//! * paths never repeat a link, and `max_path_len()` bounds every
//!   candidate path's length.
//!
//! # Class interchange signatures
//!
//! The search engine prunes symmetric routings: two classes that an
//! automorphism of the fabric exchanges (fixing all hosts) produce
//! identical allocations under any relabeling, so only canonical
//! representatives are enumerated. [`Fabric::class_signature`] is the
//! sound over-approximation of "interchangeable": classes whose
//! signatures are **equal** must be exchangeable by an automorphism of
//! the capacitied fabric that fixes every host and every other class's
//! path set — and the full symmetric group on each signature group must
//! be realized, because the reduction canonicalises by arbitrary
//! within-group permutations. A fabric whose symmetry group on classes
//! is smaller (the Benes bit-flip group for order `r >= 3`) must return
//! pairwise-distinct signatures and forgo the reduction rather than
//! unsoundly enable it. The first component is a structural tag (e.g.
//! the fat-tree core group); the second lists the capacities an
//! exchange must preserve, in a fixed fabric-defined order.

use clos_rational::Rational;

use crate::{Capacity, CapacityMap, Flow, LinkId, Network, NodeId, Path};

/// A multi-stage data-center fabric with per-flow candidate paths
/// indexed by routing class (see the module docs for the contract).
pub trait Fabric {
    /// The underlying directed network.
    fn network(&self) -> &Network;

    /// Number of routing classes (candidate paths per flow).
    fn class_count(&self) -> usize;

    /// Appends the links of `flow`'s candidate path for `class` to
    /// `out`, in path order, without clearing `out` — the
    /// allocation-free primitive behind compiled tables and scratch
    /// reuse.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range or the flow endpoints are not
    /// a source/destination of this fabric.
    fn append_links_via(&self, flow: Flow, class: usize, out: &mut Vec<LinkId>);

    /// Returns `flow`'s candidate path for `class`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`Fabric::append_links_via`].
    #[must_use]
    fn path_via_class(&self, flow: Flow, class: usize) -> Path {
        let mut links = Vec::new();
        self.append_links_via(flow, class, &mut links);
        Path::new(links)
    }

    /// Returns all `class_count()` candidate paths for `flow`, indexed
    /// by class.
    ///
    /// # Panics
    ///
    /// Panics if the flow endpoints are not a source/destination of
    /// this fabric.
    #[must_use]
    fn candidate_paths(&self, flow: Flow) -> Vec<Path> {
        (0..self.class_count())
            .map(|c| self.path_via_class(flow, c))
            .collect()
    }

    /// Returns the routing class a path follows, or `None` if the path
    /// does not identify one (e.g. it never enters this fabric).
    fn class_of_path(&self, path: &Path) -> Option<usize>;

    /// Returns the `(group, host)` coordinates of a source server, or
    /// `None` if `node` is not a source of this fabric.
    ///
    /// The group index is fabric-specific (input-ToR index on Clos and
    /// Benes, pod-global edge index on a fat-tree); within a group,
    /// hosts are numbered densely from zero.
    fn source_coords(&self, node: NodeId) -> Option<(usize, usize)>;

    /// Returns the `(group, host)` coordinates of a destination server,
    /// or `None` if `node` is not a destination of this fabric.
    fn destination_coords(&self, node: NodeId) -> Option<(usize, usize)>;

    /// Returns the class-interchange signature of `class`: a structural
    /// tag plus the capacities (in a fixed fabric-defined order) that
    /// an automorphism exchanging two classes must preserve. Classes
    /// with **equal** signatures must be exchangeable by host-fixing
    /// automorphisms realizing the full symmetric group on their
    /// signature group; see the module docs for why smaller symmetry
    /// groups must return distinct signatures.
    #[must_use]
    fn class_signature(&self, class: usize) -> (usize, Vec<Capacity>);

    /// Returns a copy of this fabric with the capacities in `overlay`
    /// substituted; every node, link, and coordinate of the copy
    /// matches the original identifier-for-identifier.
    ///
    /// # Panics
    ///
    /// Panics if `overlay` names a link outside this fabric.
    #[must_use]
    fn with_capacities(&self, overlay: &CapacityMap) -> Self
    where
        Self: Sized;

    /// The fabric's nominal (pristine, undegraded) link capacity — the
    /// capacity heuristics use as "room on one link" when they have no
    /// per-link overlay to consult.
    #[must_use]
    fn nominal_capacity(&self) -> Rational;

    /// An upper bound on the length (in links) of every candidate path.
    #[must_use]
    fn max_path_len(&self) -> usize;
}
