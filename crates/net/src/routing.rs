//! Routings: the assignment of each flow to a single path.

use std::error::Error;
use std::fmt;

use crate::{Flow, FlowId, LinkId, Network, Path, PathError};

/// A routing: one [`Path`] per flow, indexed by flow position (§2.2).
///
/// In a macro-switch the routing is unique; in a Clos network `C_n` there
/// are `n^|F|` routings, and both the max-min fair allocation and the
/// throughput depend on which one is chosen — the central theme of the
/// paper. `Routing` is a passive data structure; the allocators in
/// `clos-fairness` consume it, and the routers in `clos-core` produce it.
///
/// # Examples
///
/// ```
/// use clos_net::{ClosNetwork, Flow, Routing};
///
/// let clos = ClosNetwork::standard(2);
/// let flows = [Flow::new(clos.source(0, 0), clos.destination(2, 0))];
/// let routing = Routing::new(vec![clos.path_via(flows[0], 1)]);
/// routing.validate(clos.network(), &flows)?;
/// # Ok::<(), clos_net::RoutingError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Routing {
    paths: Vec<Path>,
}

impl Routing {
    /// Creates a routing from one path per flow, in flow order.
    #[must_use]
    pub fn new(paths: Vec<Path>) -> Routing {
        Routing { paths }
    }

    /// Returns the path assigned to `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range for this routing.
    #[must_use]
    pub fn path(&self, flow: FlowId) -> &Path {
        &self.paths[flow.index()]
    }

    /// Returns all paths in flow order.
    #[must_use]
    pub fn paths(&self) -> &[Path] {
        &self.paths
    }

    /// Returns the number of routed flows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if no flows are routed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Replaces the path of `flow`, returning the previous path.
    ///
    /// Used by local-search routers that move one flow at a time.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range for this routing.
    pub fn reassign(&mut self, flow: FlowId, path: Path) -> Path {
        std::mem::replace(&mut self.paths[flow.index()], path)
    }

    /// Validates the routing against a network and flow collection: the
    /// number of paths matches the number of flows and each path is a valid
    /// source→destination path for its flow.
    ///
    /// # Errors
    ///
    /// Returns [`RoutingError::LengthMismatch`] or the first per-flow
    /// [`RoutingError::InvalidPath`].
    pub fn validate(&self, net: &Network, flows: &[Flow]) -> Result<(), RoutingError> {
        if self.paths.len() != flows.len() {
            return Err(RoutingError::LengthMismatch {
                paths: self.paths.len(),
                flows: flows.len(),
            });
        }
        for (i, (path, &flow)) in self.paths.iter().zip(flows).enumerate() {
            path.is_valid(net, flow)
                .map_err(|source| RoutingError::InvalidPath {
                    flow: FlowId::from(i),
                    source,
                })?;
        }
        Ok(())
    }

    /// Returns, for every link of `net`, the flows whose paths traverse it.
    ///
    /// The result is indexed by [`LinkId`]. This is the primitive the
    /// water-filling allocator uses to find bottleneck links.
    #[must_use]
    pub fn flows_per_link(&self, net: &Network) -> Vec<Vec<FlowId>> {
        let mut members = vec![Vec::new(); net.link_count()];
        for (i, path) in self.paths.iter().enumerate() {
            for &e in path.links() {
                members[e.index()].push(FlowId::from(i));
            }
        }
        members
    }

    /// Returns the flows whose paths traverse `link`.
    #[must_use]
    pub fn flows_on_link(&self, link: LinkId) -> Vec<FlowId> {
        self.paths
            .iter()
            .enumerate()
            .filter(|(_, p)| p.contains(link))
            .map(|(i, _)| FlowId::from(i))
            .collect()
    }
}

impl FromIterator<Path> for Routing {
    fn from_iter<I: IntoIterator<Item = Path>>(iter: I) -> Routing {
        Routing::new(iter.into_iter().collect())
    }
}

/// The error returned when a [`Routing`] fails validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RoutingError {
    /// The routing has a different number of paths than there are flows.
    LengthMismatch {
        /// Number of paths in the routing.
        paths: usize,
        /// Number of flows in the collection.
        flows: usize,
    },
    /// A path is not a valid source→destination path for its flow.
    InvalidPath {
        /// The flow whose path is invalid.
        flow: FlowId,
        /// The underlying path validation error.
        source: PathError,
    },
}

impl fmt::Display for RoutingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoutingError::LengthMismatch { paths, flows } => {
                write!(f, "routing has {paths} paths for {flows} flows")
            }
            RoutingError::InvalidPath { flow, source } => {
                write!(f, "invalid path for flow {flow}: {source}")
            }
        }
    }
}

impl Error for RoutingError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RoutingError::InvalidPath { source, .. } => Some(source),
            RoutingError::LengthMismatch { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosNetwork;

    fn setup() -> (ClosNetwork, Vec<Flow>) {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(3, 1)),
        ];
        (clos, flows)
    }

    #[test]
    fn valid_routing_passes() {
        let (clos, flows) = setup();
        let routing: Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
        assert!(routing.validate(clos.network(), &flows).is_ok());
        assert_eq!(routing.len(), 2);
        assert!(!routing.is_empty());
    }

    #[test]
    fn length_mismatch_detected() {
        let (clos, flows) = setup();
        let routing = Routing::new(vec![clos.path_via(flows[0], 0)]);
        assert_eq!(
            routing.validate(clos.network(), &flows),
            Err(RoutingError::LengthMismatch { paths: 1, flows: 2 })
        );
    }

    #[test]
    fn wrong_path_detected_with_flow_position() {
        let (clos, flows) = setup();
        // Give flow 1 the path of flow 0.
        let routing = Routing::new(vec![clos.path_via(flows[0], 0), clos.path_via(flows[0], 0)]);
        match routing.validate(clos.network(), &flows) {
            Err(RoutingError::InvalidPath { flow, .. }) => assert_eq!(flow, FlowId::new(1)),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn flows_per_link_indexes_members() {
        let (clos, flows) = setup();
        // Both flows through middle switch 0: they share the I_0 -> M_0 uplink.
        let routing: Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
        let members = routing.flows_per_link(clos.network());
        let uplink = clos.uplink(0, 0);
        assert_eq!(
            members[uplink.index()],
            vec![FlowId::new(0), FlowId::new(1)]
        );
        assert_eq!(
            routing.flows_on_link(uplink),
            vec![FlowId::new(0), FlowId::new(1)]
        );
        // Different middle switches: the uplink carries only one flow.
        let routing2 = Routing::new(vec![clos.path_via(flows[0], 0), clos.path_via(flows[1], 1)]);
        assert_eq!(routing2.flows_on_link(uplink), vec![FlowId::new(0)]);
    }

    #[test]
    fn reassign_swaps_path() {
        let (clos, flows) = setup();
        let mut routing: Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
        let old = routing.reassign(FlowId::new(0), clos.path_via(flows[0], 1));
        assert_eq!(&old, &clos.path_via(flows[0], 0));
        assert_eq!(routing.path(FlowId::new(0)), &clos.path_via(flows[0], 1));
        assert!(routing.validate(clos.network(), &flows).is_ok());
    }

    #[test]
    fn error_display_and_source() {
        let (clos, flows) = setup();
        let routing = Routing::new(vec![]);
        let err = routing.validate(clos.network(), &flows).unwrap_err();
        assert!(err.to_string().contains("0 paths for 2 flows"));
        assert!(Error::source(&err).is_none());
    }
}
