//! The directed-graph substrate underlying every topology.

use std::error::Error;
use std::fmt;

use crate::{Capacity, LinkId, NodeId};

/// The role a node plays in a three-stage data-center topology.
///
/// The paper's model (§2.1) distinguishes source servers, input ToR
/// switches, middle switches, output ToR switches, and destination servers.
/// Roles are carried on nodes so that validation (flows start at sources and
/// end at destinations, paths traverse stages in order) can be enforced
/// dynamically.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NodeKind {
    /// A source server `s_i^j`.
    Source,
    /// An input top-of-rack switch `I_i`.
    InputTor,
    /// A middle switch `M_m`.
    Middle,
    /// An output top-of-rack switch `O_i`.
    OutputTor,
    /// A destination server `t_i^j`.
    Destination,
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Source => "source",
            NodeKind::InputTor => "input-tor",
            NodeKind::Middle => "middle",
            NodeKind::OutputTor => "output-tor",
            NodeKind::Destination => "destination",
        };
        f.write_str(s)
    }
}

/// Unwraps server `(group, host)` coordinates resolved by an
/// `Option`-returning accessor (`source_coords`/`destination_coords` on
/// the fabric types), panicking with one consistent message when the
/// node is not of the expected kind.
///
/// Callers that can recover from a foreign node should match on the
/// `Option` directly; this helper is for the documented-panic call
/// sites (path construction, flow translation) where a wrong-kind node
/// means the caller mixed up fabrics.
///
/// # Panics
///
/// Panics if `coords` is `None`.
#[must_use]
pub fn expect_server_coords(
    node: NodeId,
    expected: NodeKind,
    coords: Option<(usize, usize)>,
) -> (usize, usize) {
    match coords {
        Some(c) => c,
        None => panic!("node {node} is not a {expected}"),
    }
}

/// A node of a [`Network`]: a server or a switch.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Node {
    id: NodeId,
    kind: NodeKind,
    label: String,
}

impl Node {
    /// Returns the node's identifier.
    #[must_use]
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Returns the node's role in the topology.
    #[must_use]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Returns the human-readable label, e.g. `"I_2"` or `"s_1^3"`.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// A directed link of a [`Network`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Link {
    id: LinkId,
    src: NodeId,
    dst: NodeId,
    capacity: Capacity,
}

impl Link {
    /// Returns the link's identifier.
    #[must_use]
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Returns the tail (start) node.
    #[must_use]
    pub fn src(&self) -> NodeId {
        self.src
    }

    /// Returns the head (end) node.
    #[must_use]
    pub fn dst(&self) -> NodeId {
        self.dst
    }

    /// Returns the link's capacity.
    #[must_use]
    pub fn capacity(&self) -> Capacity {
        self.capacity
    }
}

/// The error returned by [`Network`] construction and lookup operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopologyError {
    /// A referenced node identifier does not exist in the network.
    UnknownNode(NodeId),
    /// A link would connect a node to itself.
    SelfLoop(NodeId),
    /// No link connects the given pair of nodes.
    NoSuchLink {
        /// The requested tail node.
        src: NodeId,
        /// The requested head node.
        dst: NodeId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            TopologyError::NoSuchLink { src, dst } => {
                write!(f, "no link from {src} to {dst}")
            }
        }
    }
}

impl Error for TopologyError {}

/// A directed network of servers and switches with capacitated links.
///
/// `Network` is the common substrate beneath [`ClosNetwork`] and
/// [`MacroSwitch`]; the fairness and routing algorithms operate on it
/// directly so they remain correct for arbitrary topologies (the `½`
/// throughput bound of Theorem 3.4 holds for *every* interconnection
/// network, as the paper's conclusion notes).
///
/// Nodes and links receive dense identifiers in insertion order, so per-node
/// and per-link state can be kept in plain vectors.
///
/// # Examples
///
/// ```
/// use clos_net::{Capacity, Network, NodeKind};
///
/// let mut net = Network::new();
/// let s = net.add_node(NodeKind::Source, "s");
/// let t = net.add_node(NodeKind::Destination, "t");
/// let e = net.add_link(s, t, Capacity::unit())?;
/// assert_eq!(net.link(e).src(), s);
/// assert_eq!(net.out_links(s), &[e]);
/// # Ok::<(), clos_net::TopologyError>(())
/// ```
///
/// [`ClosNetwork`]: crate::ClosNetwork
/// [`MacroSwitch`]: crate::MacroSwitch
#[derive(Clone, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    nodes: Vec<Node>,
    links: Vec<Link>,
    out_links: Vec<Vec<LinkId>>,
    in_links: Vec<Vec<LinkId>>,
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Network {
        Network::default()
    }

    /// Adds a node with the given role and label, returning its identifier.
    pub fn add_node(&mut self, kind: NodeKind, label: impl Into<String>) -> NodeId {
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(Node {
            id,
            kind,
            label: label.into(),
        });
        self.out_links.push(Vec::new());
        self.in_links.push(Vec::new());
        id
    }

    /// Adds a directed link from `src` to `dst` with the given capacity.
    ///
    /// Parallel links are permitted (they arise in generalized topologies);
    /// self-loops are not.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if either endpoint does not
    /// exist, or [`TopologyError::SelfLoop`] if `src == dst`.
    pub fn add_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: Capacity,
    ) -> Result<LinkId, TopologyError> {
        if src.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(src));
        }
        if dst.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(dst));
        }
        if src == dst {
            return Err(TopologyError::SelfLoop(src));
        }
        let id = LinkId::from(self.links.len());
        self.links.push(Link {
            id,
            src,
            dst,
            capacity,
        });
        self.out_links[src.index()].push(id);
        self.in_links[dst.index()].push(id);
        Ok(id)
    }

    /// Returns the number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Returns the number of links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Replaces the capacity of an existing link, leaving the adjacency
    /// structure (and with it every [`NodeId`]/[`LinkId`]) untouched.
    ///
    /// This is the mutation primitive behind failure overlays: degraded
    /// and removed links keep their identifiers (a removed link is one
    /// whose capacity is zero), so per-link vectors indexed by dense
    /// identifiers stay valid across failure events.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    pub fn set_link_capacity(&mut self, id: LinkId, capacity: Capacity) {
        self.links[id.index()].capacity = capacity;
    }

    /// Returns the node with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the link with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this network.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Returns an iterator over all nodes in identifier order.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Returns an iterator over all links in identifier order.
    pub fn links(&self) -> impl ExactSizeIterator<Item = &Link> {
        self.links.iter()
    }

    /// Returns the identifiers of links leaving `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this network.
    #[must_use]
    pub fn out_links(&self, node: NodeId) -> &[LinkId] {
        &self.out_links[node.index()]
    }

    /// Returns the identifiers of links entering `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this network.
    #[must_use]
    pub fn in_links(&self, node: NodeId) -> &[LinkId] {
        &self.in_links[node.index()]
    }

    /// Finds the first link from `src` to `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::NoSuchLink`] if no such link exists, and
    /// [`TopologyError::UnknownNode`] if `src` is not a node of this network.
    pub fn find_link(&self, src: NodeId, dst: NodeId) -> Result<LinkId, TopologyError> {
        if src.index() >= self.nodes.len() {
            return Err(TopologyError::UnknownNode(src));
        }
        self.out_links[src.index()]
            .iter()
            .copied()
            .find(|&e| self.links[e.index()].dst == dst)
            .ok_or(TopologyError::NoSuchLink { src, dst })
    }

    /// Returns all node identifiers with the given role, in identifier order.
    #[must_use]
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(Node::id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(NodeKind::Source, "a");
        let b = net.add_node(NodeKind::InputTor, "b");
        let c = net.add_node(NodeKind::Destination, "c");
        (net, a, b, c)
    }

    #[test]
    fn nodes_get_dense_ids() {
        let (net, a, b, c) = tiny();
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(c.index(), 2);
        assert_eq!(net.node_count(), 3);
        assert_eq!(net.node(b).label(), "b");
        assert_eq!(net.node(b).kind(), NodeKind::InputTor);
    }

    #[test]
    fn links_update_adjacency() {
        let (mut net, a, b, c) = tiny();
        let e1 = net.add_link(a, b, Capacity::unit()).unwrap();
        let e2 = net.add_link(b, c, Capacity::Infinite).unwrap();
        assert_eq!(net.out_links(a), &[e1]);
        assert_eq!(net.in_links(b), &[e1]);
        assert_eq!(net.out_links(b), &[e2]);
        assert_eq!(net.in_links(c), &[e2]);
        assert_eq!(net.link(e2).capacity(), Capacity::Infinite);
        assert_eq!(net.link_count(), 2);
    }

    #[test]
    fn parallel_links_allowed() {
        let (mut net, a, b, _) = tiny();
        let e1 = net.add_link(a, b, Capacity::unit()).unwrap();
        let e2 = net.add_link(a, b, Capacity::unit()).unwrap();
        assert_ne!(e1, e2);
        assert_eq!(net.out_links(a).len(), 2);
        // find_link returns the first.
        assert_eq!(net.find_link(a, b).unwrap(), e1);
    }

    #[test]
    fn self_loop_rejected() {
        let (mut net, a, _, _) = tiny();
        assert_eq!(
            net.add_link(a, a, Capacity::unit()),
            Err(TopologyError::SelfLoop(a))
        );
    }

    #[test]
    fn unknown_node_rejected() {
        let (mut net, a, _, _) = tiny();
        let ghost = NodeId::new(99);
        assert_eq!(
            net.add_link(a, ghost, Capacity::unit()),
            Err(TopologyError::UnknownNode(ghost))
        );
        assert_eq!(
            net.add_link(ghost, a, Capacity::unit()),
            Err(TopologyError::UnknownNode(ghost))
        );
        assert_eq!(
            net.find_link(ghost, a),
            Err(TopologyError::UnknownNode(ghost))
        );
    }

    #[test]
    fn find_link_reports_missing() {
        let (mut net, a, b, c) = tiny();
        net.add_link(a, b, Capacity::unit()).unwrap();
        assert_eq!(
            net.find_link(a, c),
            Err(TopologyError::NoSuchLink { src: a, dst: c })
        );
    }

    #[test]
    fn nodes_of_kind_filters() {
        let (net, a, b, c) = tiny();
        assert_eq!(net.nodes_of_kind(NodeKind::Source), vec![a]);
        assert_eq!(net.nodes_of_kind(NodeKind::InputTor), vec![b]);
        assert_eq!(net.nodes_of_kind(NodeKind::Destination), vec![c]);
        assert!(net.nodes_of_kind(NodeKind::Middle).is_empty());
    }

    #[test]
    fn error_display() {
        let e = TopologyError::NoSuchLink {
            src: NodeId::new(0),
            dst: NodeId::new(1),
        };
        assert_eq!(e.to_string(), "no link from v0 to v1");
        assert_eq!(
            TopologyError::SelfLoop(NodeId::new(2)).to_string(),
            "self-loop at node v2"
        );
        assert_eq!(
            TopologyError::UnknownNode(NodeId::new(3)).to_string(),
            "unknown node v3"
        );
    }

    #[test]
    fn iterators_cover_everything() {
        let (mut net, a, b, c) = tiny();
        net.add_link(a, b, Capacity::unit()).unwrap();
        net.add_link(b, c, Capacity::unit()).unwrap();
        assert_eq!(net.nodes().count(), 3);
        assert_eq!(net.links().count(), 2);
        assert!(net.links().all(|l| l.src() != l.dst()));
    }
}
