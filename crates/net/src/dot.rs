//! Graphviz (DOT) export of topologies and routings.
//!
//! Handy for eyeballing the constructions: the adversarial instances of
//! the paper are small enough to render directly
//! (`dot -Tsvg out.dot > out.svg`).

use std::fmt::Write as _;

use crate::{Flow, Network, NodeKind, Routing};

fn node_attrs(kind: NodeKind) -> &'static str {
    match kind {
        NodeKind::Source => "shape=circle, fillcolor=\"#cfe8ff\", style=filled",
        NodeKind::InputTor => "shape=box, fillcolor=\"#ffe6b3\", style=filled",
        NodeKind::Middle => "shape=box, fillcolor=\"#e0e0e0\", style=filled",
        NodeKind::OutputTor => "shape=box, fillcolor=\"#ffd9b3\", style=filled",
        NodeKind::Destination => "shape=circle, fillcolor=\"#d6f5d6\", style=filled",
    }
}

/// Renders the topology as a DOT digraph: servers as circles, switches as
/// boxes, links labeled with their capacities.
///
/// # Examples
///
/// ```
/// use clos_net::{dot::network_dot, ClosNetwork};
///
/// let dot = network_dot(ClosNetwork::standard(1).network());
/// assert!(dot.starts_with("digraph clos {"));
/// assert!(dot.contains("\"I_0\""));
/// ```
#[must_use]
pub fn network_dot(net: &Network) -> String {
    let mut out = String::from("digraph clos {\n  rankdir=LR;\n");
    for node in net.nodes() {
        let _ = writeln!(out, "  \"{}\" [{}];", node.label(), node_attrs(node.kind()));
    }
    for link in net.links() {
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\" [label=\"{}\"];",
            net.node(link.src()).label(),
            net.node(link.dst()).label(),
            link.capacity()
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a routed flow collection as a DOT digraph: only the links used
/// by at least one flow are drawn, labeled with the number of flows they
/// carry (the quantity water-filling divides capacity by).
///
/// # Panics
///
/// Panics if the routing does not match the flows or references links
/// outside `net`.
///
/// # Examples
///
/// ```
/// use clos_net::{dot::routing_dot, ClosNetwork, Flow, Routing};
///
/// let clos = ClosNetwork::standard(1);
/// let flows = [Flow::new(clos.source(0, 0), clos.destination(1, 0))];
/// let routing = Routing::new(vec![clos.path_via(flows[0], 0)]);
/// let dot = routing_dot(clos.network(), &flows, &routing);
/// assert!(dot.contains("label=\"1 flow(s)\""));
/// ```
#[must_use]
pub fn routing_dot(net: &Network, flows: &[Flow], routing: &Routing) -> String {
    assert_eq!(routing.len(), flows.len(), "routing/flows length mismatch");
    let members = routing.flows_per_link(net);
    let mut out = String::from("digraph routing {\n  rankdir=LR;\n");
    let mut used_nodes = std::collections::BTreeSet::new();
    for link in net.links() {
        if !members[link.id().index()].is_empty() {
            used_nodes.insert(link.src());
            used_nodes.insert(link.dst());
        }
    }
    for node in net.nodes() {
        if used_nodes.contains(&node.id()) {
            let _ = writeln!(out, "  \"{}\" [{}];", node.label(), node_attrs(node.kind()));
        }
    }
    for link in net.links() {
        let count = members[link.id().index()].len();
        if count > 0 {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{} flow(s)\", penwidth={}];",
                net.node(link.src()).label(),
                net.node(link.dst()).label(),
                count,
                1 + count.min(6)
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosNetwork;

    #[test]
    fn network_dot_lists_all_nodes_and_links() {
        let clos = ClosNetwork::standard(1);
        let dot = network_dot(clos.network());
        assert!(dot.starts_with("digraph clos {"));
        assert!(dot.trim_end().ends_with('}'));
        for node in clos.network().nodes() {
            assert!(dot.contains(&format!("\"{}\"", node.label())));
        }
        // One arrow line per link.
        assert_eq!(dot.matches(" -> ").count(), clos.network().link_count());
        // Capacities labeled.
        assert!(dot.contains("label=\"1\""));
    }

    #[test]
    fn routing_dot_draws_only_used_links() {
        let clos = ClosNetwork::standard(2);
        let flows = [
            Flow::new(clos.source(0, 0), clos.destination(2, 0)),
            Flow::new(clos.source(0, 1), clos.destination(2, 0)),
        ];
        let routing = Routing::new(vec![clos.path_via(flows[0], 0), clos.path_via(flows[1], 0)]);
        let dot = routing_dot(clos.network(), &flows, &routing);
        // Shared uplink and shared host downlink carry 2 flows.
        assert!(dot.contains("label=\"2 flow(s)\""));
        // The unused middle switch M_1 does not appear.
        assert!(!dot.contains("\"M_1\""));
        assert!(dot.contains("\"M_0\""));
        // 6 distinct links are used (2 host up, 1 up, 1 down, 2... ) count:
        // s00->I0, s01->I0, I0->M0, M0->O2, O2->t20 = 5 links.
        assert_eq!(dot.matches(" -> ").count(), 5);
    }

    #[test]
    fn braces_balance() {
        let clos = ClosNetwork::standard(2);
        let dot = network_dot(clos.network());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
