//! Link capacities: finite exact values or infinity.

use std::cmp::Ordering;
use std::fmt;

use clos_rational::Rational;

/// The capacity of a directed link.
///
/// Clos-network links have finite (typically unit) capacity; the mesh links
/// inside a macro-switch are infinite (§2.1 of the paper), meaning they never
/// constrain an allocation. Modeling infinity explicitly (rather than with a
/// large sentinel value) keeps the water-filling allocator exact: an
/// infinite-capacity link is simply never a candidate bottleneck.
///
/// # Examples
///
/// ```
/// use clos_net::Capacity;
/// use clos_rational::Rational;
///
/// let unit = Capacity::unit();
/// assert_eq!(unit.finite(), Some(Rational::ONE));
/// assert!(Capacity::Infinite > unit);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Capacity {
    /// A finite capacity. Must be non-negative.
    Finite(Rational),
    /// Unlimited capacity; the link never constrains an allocation.
    Infinite,
}

impl Capacity {
    /// Returns the unit capacity used by all Clos-network links in the paper.
    #[must_use]
    pub const fn unit() -> Capacity {
        Capacity::Finite(Rational::ONE)
    }

    /// Creates a finite capacity.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative.
    #[must_use]
    pub fn finite_value(value: Rational) -> Capacity {
        assert!(!value.is_negative(), "capacity must be non-negative");
        Capacity::Finite(value)
    }

    /// Returns the finite value, or `None` for [`Capacity::Infinite`].
    #[must_use]
    pub const fn finite(self) -> Option<Rational> {
        match self {
            Capacity::Finite(v) => Some(v),
            Capacity::Infinite => None,
        }
    }

    /// Returns `true` if the capacity is infinite.
    #[must_use]
    pub const fn is_infinite(self) -> bool {
        matches!(self, Capacity::Infinite)
    }

    /// Returns `true` if a total load fits within this capacity.
    ///
    /// # Examples
    ///
    /// ```
    /// use clos_net::Capacity;
    /// use clos_rational::Rational;
    ///
    /// assert!(Capacity::unit().admits(Rational::new(2, 3)));
    /// assert!(!Capacity::unit().admits(Rational::new(4, 3)));
    /// assert!(Capacity::Infinite.admits(Rational::from_integer(1_000_000)));
    /// ```
    #[must_use]
    pub fn admits(self, load: Rational) -> bool {
        match self {
            Capacity::Finite(c) => load <= c,
            Capacity::Infinite => true,
        }
    }
}

impl Default for Capacity {
    /// The unit capacity, matching the paper's link model.
    fn default() -> Capacity {
        Capacity::unit()
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Finite(v) => write!(f, "{v}"),
            Capacity::Infinite => write!(f, "inf"),
        }
    }
}

impl PartialOrd for Capacity {
    fn partial_cmp(&self, other: &Capacity) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Capacity {
    fn cmp(&self, other: &Capacity) -> Ordering {
        match (self, other) {
            (Capacity::Finite(a), Capacity::Finite(b)) => a.cmp(b),
            (Capacity::Finite(_), Capacity::Infinite) => Ordering::Less,
            (Capacity::Infinite, Capacity::Finite(_)) => Ordering::Greater,
            (Capacity::Infinite, Capacity::Infinite) => Ordering::Equal,
        }
    }
}

impl From<Rational> for Capacity {
    /// # Panics
    ///
    /// Panics if `value` is negative.
    fn from(value: Rational) -> Capacity {
        Capacity::finite_value(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_is_default() {
        assert_eq!(Capacity::default(), Capacity::unit());
        assert_eq!(Capacity::unit().finite(), Some(Rational::ONE));
    }

    #[test]
    fn admits_respects_bounds() {
        let half = Capacity::finite_value(Rational::new(1, 2));
        assert!(half.admits(Rational::new(1, 2)));
        assert!(!half.admits(Rational::new(2, 3)));
        assert!(Capacity::Infinite.admits(Rational::from_integer(i64::MAX as i128)));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_capacity_rejected() {
        let _ = Capacity::finite_value(Rational::new(-1, 2));
    }

    #[test]
    fn infinite_dominates_order() {
        let big = Capacity::finite_value(Rational::from_integer(1 << 60));
        assert!(Capacity::Infinite > big);
        assert!(big > Capacity::unit());
        assert_eq!(Capacity::Infinite.cmp(&Capacity::Infinite), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(Capacity::unit().to_string(), "1");
        assert_eq!(Capacity::Infinite.to_string(), "inf");
        assert_eq!(
            Capacity::finite_value(Rational::new(3, 2)).to_string(),
            "3/2"
        );
    }

    #[test]
    fn conversion_from_rational() {
        let c: Capacity = Rational::new(2, 1).into();
        assert_eq!(c.finite(), Some(Rational::TWO));
        assert!(!c.is_infinite());
        assert!(Capacity::Infinite.is_infinite());
    }
}
