//! The rearrangeably non-blocking Benes network `B_r`.

#![allow(clippy::needless_range_loop)]

use clos_rational::Rational;
use clos_telemetry::counters;

use crate::{Capacity, CapacityMap, Fabric, Flow, LinkId, Network, NodeId, NodeKind, Path};

/// Orders above this would overflow the fixed recursion scratch (and a
/// `B_16` already has 65 536 terminals — far beyond exhaustive search).
const MAX_ORDER: usize = 16;

/// Where a node sits within a Benes network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BenesNodeLoc {
    Source { terminal: usize },
    Switch,
    Destination { terminal: usize },
}

/// Where a link sits within a Benes network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BenesLinkRole {
    HostUp,
    /// Left-half link chosen at recursion `level` when the class's bit
    /// at that level equals `bit` (the top/bottom sub-network choice).
    Forward {
        level: usize,
        bit: usize,
    },
    Backward,
    HostDown,
}

/// The Benes network `B_r` of order `r`: `2^r` source and destination
/// terminals over `2r - 1` columns of 2×2 switch modules (cf. Huang &
/// Walrand, arXiv 1208.0561).
///
/// The network is built by the classical recursion: a first and last
/// column of `2^(r-1)` switches sandwich a *top* and a *bottom* copy of
/// `B_(r-1)`. Routing a flow is choosing top or bottom at each of the
/// `r - 1` recursion levels, so the fabric exposes `2^(r-1)` routing
/// classes — class `c`'s bit `k` is the sub-network taken at level `k` —
/// and every candidate path has `2r` links (log-depth, against the Clos
/// network's constant four).
///
/// `B_r` is rearrangeably non-blocking: every permutation of terminals
/// can be routed with unit rates. Unlike the Clos middle stage, the
/// automorphism group on classes is the bit-flip group `(Z/2)^(r-1)`,
/// **not** the full symmetric group, so for `r >= 3` the fabric reports
/// pairwise-distinct [class signatures](Fabric::class_signature) and the
/// search engines forgo symmetry reduction rather than unsoundly apply
/// it.
///
/// # Examples
///
/// ```
/// use clos_net::{BenesNetwork, Fabric, Flow};
///
/// let benes = BenesNetwork::standard(3);
/// assert_eq!(benes.terminal_count(), 8);
/// assert_eq!(benes.class_count(), 4);
/// let f = Flow::new(benes.source(0), benes.destination(7));
/// let p = benes.path_via_class(f, 2);
/// assert_eq!(p.len(), 6); // 2r links
/// assert!(p.is_valid(benes.network(), f).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct BenesNetwork {
    net: Network,
    order: usize,
    link_capacity: Rational,
    sources: Vec<NodeId>,
    destinations: Vec<NodeId>,
    host_uplinks: Vec<LinkId>,
    host_downlinks: Vec<LinkId>,
    /// `forward[k][row][t]`: the link leaving column `k`'s switch `row`
    /// into the top (`t = 0`) or bottom (`t = 1`) sub-network at
    /// recursion level `k`.
    forward: Vec<Vec<[LinkId; 2]>>,
    /// `backward[k][row][t]`: the link entering column `2r-2-k`'s switch
    /// `row` from sub-network `t` (mirror of `forward`).
    backward: Vec<Vec<[LinkId; 2]>>,
    node_locs: Vec<BenesNodeLoc>,
    link_roles: Vec<BenesLinkRole>,
}

impl BenesNetwork {
    /// Builds `B_r` with unit link capacities.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or exceeds 16.
    #[must_use]
    pub fn standard(order: usize) -> BenesNetwork {
        BenesNetwork::with_capacity(order, Rational::ONE)
    }

    /// Builds `B_r` with the given uniform link capacity.
    ///
    /// # Panics
    ///
    /// Panics if `order` is zero or exceeds 16, or the capacity is
    /// non-positive.
    #[must_use]
    pub fn with_capacity(order: usize, link_capacity: Rational) -> BenesNetwork {
        assert!(order >= 1, "Benes order must be at least 1");
        assert!(
            order <= MAX_ORDER,
            "Benes order must be at most {MAX_ORDER}"
        );
        assert!(
            link_capacity.is_positive(),
            "link capacity must be positive"
        );
        let cap = Capacity::finite_value(link_capacity);
        let terminals = 1usize << order;
        let rows = terminals / 2;
        let columns = 2 * order - 1;

        let mut net = Network::new();
        let mut node_locs = Vec::new();
        let mut link_roles = Vec::new();

        let mut sources = Vec::with_capacity(terminals);
        for a in 0..terminals {
            sources.push(net.add_node(NodeKind::Source, format!("s_{}^{}", a / 2, a % 2)));
            node_locs.push(BenesNodeLoc::Source { terminal: a });
        }
        let mut switches: Vec<Vec<NodeId>> = Vec::with_capacity(columns);
        for col in 0..columns {
            let kind = if col == 0 {
                NodeKind::InputTor
            } else if col == columns - 1 {
                NodeKind::OutputTor
            } else {
                NodeKind::Middle
            };
            let mut column = Vec::with_capacity(rows);
            for row in 0..rows {
                let label = match kind {
                    NodeKind::InputTor => format!("I_{row}"),
                    NodeKind::OutputTor => format!("O_{row}"),
                    _ => format!("B_{col}^{row}"),
                };
                column.push(net.add_node(kind, label));
                node_locs.push(BenesNodeLoc::Switch);
            }
            switches.push(column);
        }
        let mut destinations = Vec::with_capacity(terminals);
        for b in 0..terminals {
            destinations
                .push(net.add_node(NodeKind::Destination, format!("t_{}^{}", b / 2, b % 2)));
            node_locs.push(BenesNodeLoc::Destination { terminal: b });
        }

        let mut host_uplinks = Vec::with_capacity(terminals);
        for a in 0..terminals {
            let e = net
                .add_link(sources[a], switches[0][a / 2], cap)
                .expect("endpoints exist");
            link_roles.push(BenesLinkRole::HostUp);
            host_uplinks.push(e);
        }

        let mut forward = vec![vec![[LinkId::new(0); 2]; rows]; order.saturating_sub(1)];
        let mut backward = vec![vec![[LinkId::new(0); 2]; rows]; order.saturating_sub(1)];
        if order >= 2 {
            BenesNetwork::wire(
                &mut net,
                &switches,
                &mut forward,
                &mut backward,
                &mut link_roles,
                cap,
                order,
                order,
                0,
                0,
            );
        }

        let mut host_downlinks = Vec::with_capacity(terminals);
        for b in 0..terminals {
            let e = net
                .add_link(switches[columns - 1][b / 2], destinations[b], cap)
                .expect("endpoints exist");
            link_roles.push(BenesLinkRole::HostDown);
            host_downlinks.push(e);
        }

        counters::TOPOLOGY_BUILDS.incr();
        counters::FABRIC_CLASSES.add(1 << (order - 1));

        BenesNetwork {
            net,
            order,
            link_capacity,
            sources,
            destinations,
            host_uplinks,
            host_downlinks,
            forward,
            backward,
            node_locs,
            link_roles,
        }
    }

    /// Recursively wires the sub-Benes of order `q >= 2` at recursion
    /// `level` whose switch rows start at `row_off`: first column
    /// fan-out into the top/bottom copies of `B_(q-1)`, mirrored
    /// fan-in on the last column, then both sub-copies.
    #[allow(clippy::too_many_arguments)]
    fn wire(
        net: &mut Network,
        switches: &[Vec<NodeId>],
        forward: &mut [Vec<[LinkId; 2]>],
        backward: &mut [Vec<[LinkId; 2]>],
        link_roles: &mut Vec<BenesLinkRole>,
        cap: Capacity,
        order: usize,
        q: usize,
        level: usize,
        row_off: usize,
    ) {
        let col_lo = level;
        let col_hi = 2 * order - 2 - level;
        // Rows per sub-copy and first/last-column switches of this sub.
        let half = 1usize << (q - 2);
        let rows = 1usize << (q - 1);
        for t in 0..2 {
            let sub_off = row_off + t * half;
            for s in 0..rows {
                let e = net
                    .add_link(
                        switches[col_lo][row_off + s],
                        switches[col_lo + 1][sub_off + s / 2],
                        cap,
                    )
                    .expect("endpoints exist");
                forward[level][row_off + s][t] = e;
                link_roles.push(BenesLinkRole::Forward { level, bit: t });
                let e = net
                    .add_link(
                        switches[col_hi - 1][sub_off + s / 2],
                        switches[col_hi][row_off + s],
                        cap,
                    )
                    .expect("endpoints exist");
                backward[level][row_off + s][t] = e;
                link_roles.push(BenesLinkRole::Backward);
            }
            if q > 2 {
                BenesNetwork::wire(
                    net,
                    switches,
                    forward,
                    backward,
                    link_roles,
                    cap,
                    order,
                    q - 1,
                    level + 1,
                    sub_off,
                );
            }
        }
    }

    /// Returns the order `r` of this `B_r`.
    #[must_use]
    pub fn order(&self) -> usize {
        self.order
    }

    /// Returns the number of terminals `2^r` on each side.
    #[must_use]
    pub fn terminal_count(&self) -> usize {
        1 << self.order
    }

    /// Returns the source terminal with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    #[must_use]
    pub fn source(&self, terminal: usize) -> NodeId {
        self.sources[terminal]
    }

    /// Returns the destination terminal with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `terminal` is out of range.
    #[must_use]
    pub fn destination(&self, terminal: usize) -> NodeId {
        self.destinations[terminal]
    }

    /// Returns the terminal index of a source node, or `None` if `node`
    /// is not a source of this network.
    #[must_use]
    pub fn source_terminal(&self, node: NodeId) -> Option<usize> {
        match self.node_locs.get(node.index()) {
            Some(&BenesNodeLoc::Source { terminal }) => Some(terminal),
            _ => None,
        }
    }

    /// Returns the terminal index of a destination node, or `None` if
    /// `node` is not a destination of this network.
    #[must_use]
    pub fn destination_terminal(&self, node: NodeId) -> Option<usize> {
        match self.node_locs.get(node.index()) {
            Some(&BenesNodeLoc::Destination { terminal }) => Some(terminal),
            _ => None,
        }
    }
}

impl Fabric for BenesNetwork {
    fn network(&self) -> &Network {
        &self.net
    }

    fn class_count(&self) -> usize {
        1 << (self.order - 1)
    }

    fn append_links_via(&self, flow: Flow, class: usize, out: &mut Vec<LinkId>) {
        assert!(
            class < self.class_count(),
            "routing class {class} out of range (have {})",
            self.class_count()
        );
        let a = match self.source_terminal(flow.src()) {
            Some(a) => a,
            None => panic!("node {} is not a {}", flow.src(), NodeKind::Source),
        };
        let b = match self.destination_terminal(flow.dst()) {
            Some(b) => b,
            None => panic!("node {} is not a {}", flow.dst(), NodeKind::Destination),
        };
        out.push(self.host_uplinks[a]);
        let r = self.order;
        if r >= 2 {
            // Descend: the class's bit at level `k` picks top/bottom; the
            // entered sub-copy's row offset accumulates the chosen halves.
            let mut offs = [0usize; MAX_ORDER];
            let mut off = 0usize;
            for k in 0..r - 1 {
                offs[k] = off;
                let t = (class >> k) & 1;
                out.push(self.forward[k][off + (a >> (k + 1))][t]);
                off += t << (r - k - 2);
            }
            // Ascend: the exit switches sit in the same sub-copies, so the
            // offsets are reused in reverse with the destination terminal.
            for k in (0..r - 1).rev() {
                let t = (class >> k) & 1;
                out.push(self.backward[k][offs[k] + (b >> (k + 1))][t]);
            }
        }
        out.push(self.host_downlinks[b]);
    }

    fn class_of_path(&self, path: &Path) -> Option<usize> {
        let mut class = 0usize;
        let mut seen = 0usize;
        let mut known = false;
        for &e in path.links() {
            match self.link_roles.get(e.index()) {
                Some(&BenesLinkRole::Forward { level, bit }) => {
                    class |= bit << level;
                    seen |= 1 << level;
                    known = true;
                }
                Some(_) => known = true,
                None => {}
            }
        }
        let all = (1usize << (self.order - 1)) - 1;
        if known && seen == all {
            Some(class)
        } else {
            None
        }
    }

    fn source_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        self.source_terminal(node).map(|a| (a / 2, a % 2))
    }

    fn destination_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        self.destination_terminal(node).map(|b| (b / 2, b % 2))
    }

    fn class_signature(&self, class: usize) -> (usize, Vec<Capacity>) {
        assert!(
            class < self.class_count(),
            "routing class {class} out of range (have {})",
            self.class_count()
        );
        if self.order >= 3 {
            // The class symmetry group is the bit-flip group (Z/2)^(r-1),
            // not the full symmetric group, so the reduction contract
            // cannot be met: every class is its own singleton.
            return (class, Vec::new());
        }
        // r <= 2: at most two classes, exchanged by swapping the two
        // middle-column switches — a host-fixing automorphism realizing
        // the full S_2 when the touched capacities agree. Capacity order
        // matches the Clos signature: uplinks by row, then downlinks.
        let caps = self
            .forward
            .iter()
            .flat_map(|col| col.iter().map(|pair| self.net.link(pair[class]).capacity()))
            .chain(
                self.backward
                    .iter()
                    .flat_map(|col| col.iter().map(|pair| self.net.link(pair[class]).capacity())),
            )
            .collect();
        (0, caps)
    }

    fn with_capacities(&self, overlay: &CapacityMap) -> BenesNetwork {
        let mut out = self.clone();
        for (&link, &capacity) in overlay {
            out.net.set_link_capacity(link, capacity);
        }
        out
    }

    fn nominal_capacity(&self) -> Rational {
        self.link_capacity
    }

    fn max_path_len(&self) -> usize {
        2 * self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_follow_the_recursion() {
        for r in 1..=4 {
            let benes = BenesNetwork::standard(r);
            let n = 1usize << r;
            // 2^r terminals each side + (2r-1) columns of 2^(r-1) switches.
            assert_eq!(benes.net.node_count(), 2 * n + (2 * r - 1) * (n / 2));
            // 2^r host links each side + N links per inter-column gap.
            assert_eq!(benes.net.link_count(), 2 * n + (2 * r - 2) * n);
            assert_eq!(benes.class_count(), 1 << (r - 1));
            assert_eq!(benes.max_path_len(), 2 * r);
        }
    }

    #[test]
    fn every_candidate_path_is_valid_with_shared_host_links() {
        let benes = BenesNetwork::standard(3);
        for a in 0..8 {
            for b in 0..8 {
                let f = Flow::new(benes.source(a), benes.destination(b));
                let paths = benes.candidate_paths(f);
                assert_eq!(paths.len(), 4);
                for (c, p) in paths.iter().enumerate() {
                    assert!(p.is_valid(benes.network(), f).is_ok(), "a={a} b={b} c={c}");
                    assert_eq!(p.len(), 6);
                    assert_eq!(benes.class_of_path(p), Some(c));
                    // Host access links are class-independent.
                    assert_eq!(p.links()[0], paths[0].links()[0]);
                    assert_eq!(p.links()[5], paths[0].links()[5]);
                }
                // Classes give pairwise-distinct interiors.
                for c in 1..4 {
                    assert_ne!(paths[0].links()[1..5], paths[c].links()[1..5]);
                }
            }
        }
    }

    #[test]
    fn order_one_is_a_single_switch() {
        let benes = BenesNetwork::standard(1);
        assert_eq!(benes.class_count(), 1);
        let f = Flow::new(benes.source(0), benes.destination(1));
        let p = benes.path_via_class(f, 0);
        assert_eq!(p.len(), 2);
        assert!(p.is_valid(benes.network(), f).is_ok());
        assert_eq!(benes.class_of_path(&p), Some(0));
    }

    #[test]
    fn coords_round_trip_and_reject_switches() {
        let benes = BenesNetwork::standard(2);
        assert_eq!(benes.source_coords(benes.source(3)), Some((1, 1)));
        assert_eq!(benes.destination_coords(benes.destination(2)), Some((1, 0)));
        let switch = benes.net.nodes_of_kind(NodeKind::Middle)[0];
        assert_eq!(benes.source_coords(switch), None);
        assert_eq!(benes.destination_coords(switch), None);
        assert_eq!(benes.source_coords(benes.destination(0)), None);
    }

    #[test]
    fn signatures_shared_at_order_two_distinct_above() {
        let b2 = BenesNetwork::standard(2);
        assert_eq!(b2.class_signature(0), b2.class_signature(1));
        let b3 = BenesNetwork::standard(3);
        for c in 0..4 {
            for d in (c + 1)..4 {
                assert_ne!(b3.class_signature(c), b3.class_signature(d));
            }
        }
    }

    #[test]
    fn overlay_preserves_identifiers() {
        let benes = BenesNetwork::standard(2);
        let mut overlay = CapacityMap::new();
        overlay.insert(
            benes.host_uplinks[0],
            Capacity::finite_value(Rational::ZERO),
        );
        let degraded = benes.with_capacities(&overlay);
        assert_eq!(degraded.net.link_count(), benes.net.link_count());
        assert_eq!(
            degraded.net.link(benes.host_uplinks[0]).capacity(),
            Capacity::finite_value(Rational::ZERO)
        );
        // Untouched links keep their capacity.
        assert_eq!(
            degraded.net.link(benes.host_uplinks[1]).capacity(),
            Capacity::unit()
        );
    }

    #[test]
    fn class_of_foreign_path_is_none() {
        let benes = BenesNetwork::standard(3);
        let p = Path::new(vec![benes.host_uplinks[0]]);
        assert_eq!(benes.class_of_path(&p), None);
        let p = Path::new(vec![LinkId::new(99_999)]);
        assert_eq!(benes.class_of_path(&p), None);
    }
}
