//! Source–destination paths.

use std::error::Error;
use std::fmt;

use crate::{Flow, LinkId, Network};

/// A directed path through a network, stored as a sequence of link
/// identifiers.
///
/// A path is the unit of routing for an unsplittable flow: the flow's entire
/// rate traverses every link of its assigned path (§2.2). Paths are created
/// from raw link sequences and can be validated for connectivity against a
/// network and a flow via [`Path::is_valid`].
///
/// # Examples
///
/// ```
/// use clos_net::{ClosNetwork, Flow};
///
/// let clos = ClosNetwork::standard(2);
/// let f = Flow::new(clos.source(0, 0), clos.destination(2, 1));
/// let p = clos.path_via(f, 0);
/// assert_eq!(p.len(), 4);
/// assert!(p.links().len() == 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Path {
    links: Vec<LinkId>,
}

impl Path {
    /// Creates a path from a sequence of link identifiers.
    ///
    /// The sequence is not validated here (the links may belong to any
    /// network); call [`Path::is_valid`] to check connectivity.
    #[must_use]
    pub fn new(links: Vec<LinkId>) -> Path {
        Path { links }
    }

    /// Returns the links of the path in traversal order.
    #[must_use]
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Returns the number of links (hops).
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` if the path has no links.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Returns an iterator over the link identifiers in traversal order.
    pub fn iter(&self) -> std::slice::Iter<'_, LinkId> {
        self.links.iter()
    }

    /// Returns `true` if the path traverses `link`.
    #[must_use]
    pub fn contains(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }

    /// Checks that this path is a connected `flow.src() → flow.dst()` walk
    /// in `net` that visits no node twice.
    ///
    /// # Errors
    ///
    /// Returns a [`PathError`] describing the first violation: an unknown
    /// link, a disconnected consecutive pair, wrong endpoints, an empty
    /// path, or a repeated node.
    pub fn is_valid(&self, net: &Network, flow: Flow) -> Result<(), PathError> {
        if self.links.is_empty() {
            return Err(PathError::Empty);
        }
        for &e in &self.links {
            if e.index() >= net.link_count() {
                return Err(PathError::UnknownLink(e));
            }
        }
        let first = net.link(self.links[0]);
        if first.src() != flow.src() {
            return Err(PathError::WrongSource {
                expected: flow.src(),
                found: first.src(),
            });
        }
        let last = net.link(*self.links.last().expect("nonempty"));
        if last.dst() != flow.dst() {
            return Err(PathError::WrongDestination {
                expected: flow.dst(),
                found: last.dst(),
            });
        }
        let mut visited = vec![flow.src()];
        for pair in self.links.windows(2) {
            let a = net.link(pair[0]);
            let b = net.link(pair[1]);
            if a.dst() != b.src() {
                return Err(PathError::Disconnected {
                    prev: pair[0],
                    next: pair[1],
                });
            }
            visited.push(a.dst());
        }
        visited.push(flow.dst());
        for (i, &n) in visited.iter().enumerate() {
            if visited[..i].contains(&n) {
                return Err(PathError::RepeatedNode(n));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.links.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<LinkId> for Path {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Path {
        Path::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Path {
    type Item = &'a LinkId;
    type IntoIter = std::slice::Iter<'a, LinkId>;

    fn into_iter(self) -> Self::IntoIter {
        self.links.iter()
    }
}

/// The error returned when a [`Path`] fails validation against a network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathError {
    /// The path has no links.
    Empty,
    /// The path references a link that does not exist in the network.
    UnknownLink(LinkId),
    /// Two consecutive links do not share a node.
    Disconnected {
        /// The earlier link.
        prev: LinkId,
        /// The later link whose tail does not match.
        next: LinkId,
    },
    /// The path does not start at the flow's source.
    WrongSource {
        /// The flow's source.
        expected: crate::NodeId,
        /// The path's actual first node.
        found: crate::NodeId,
    },
    /// The path does not end at the flow's destination.
    WrongDestination {
        /// The flow's destination.
        expected: crate::NodeId,
        /// The path's actual last node.
        found: crate::NodeId,
    },
    /// The walk visits a node more than once.
    RepeatedNode(crate::NodeId),
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path is empty"),
            PathError::UnknownLink(e) => write!(f, "path references unknown link {e}"),
            PathError::Disconnected { prev, next } => {
                write!(f, "links {prev} and {next} are not adjacent")
            }
            PathError::WrongSource { expected, found } => {
                write!(f, "path starts at {found}, expected {expected}")
            }
            PathError::WrongDestination { expected, found } => {
                write!(f, "path ends at {found}, expected {expected}")
            }
            PathError::RepeatedNode(n) => write!(f, "path visits node {n} twice"),
        }
    }
}

impl Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Capacity, NodeKind};

    fn line() -> (Network, Vec<crate::NodeId>, Vec<LinkId>) {
        let mut net = Network::new();
        let s = net.add_node(NodeKind::Source, "s");
        let a = net.add_node(NodeKind::InputTor, "a");
        let b = net.add_node(NodeKind::OutputTor, "b");
        let t = net.add_node(NodeKind::Destination, "t");
        let e0 = net.add_link(s, a, Capacity::unit()).unwrap();
        let e1 = net.add_link(a, b, Capacity::unit()).unwrap();
        let e2 = net.add_link(b, t, Capacity::unit()).unwrap();
        (net, vec![s, a, b, t], vec![e0, e1, e2])
    }

    #[test]
    fn valid_path_accepted() {
        let (net, nodes, links) = line();
        let flow = Flow::new(nodes[0], nodes[3]);
        let p = Path::new(links.clone());
        assert!(p.is_valid(&net, flow).is_ok());
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.contains(links[1]));
    }

    #[test]
    fn empty_path_rejected() {
        let (net, nodes, _) = line();
        let flow = Flow::new(nodes[0], nodes[3]);
        assert_eq!(
            Path::new(vec![]).is_valid(&net, flow),
            Err(PathError::Empty)
        );
    }

    #[test]
    fn wrong_endpoints_rejected() {
        let (net, nodes, links) = line();
        let flow = Flow::new(nodes[1], nodes[3]);
        assert!(matches!(
            Path::new(links.clone()).is_valid(&net, flow),
            Err(PathError::WrongSource { .. })
        ));
        let flow = Flow::new(nodes[0], nodes[2]);
        assert!(matches!(
            Path::new(links).is_valid(&net, flow),
            Err(PathError::WrongDestination { .. })
        ));
    }

    #[test]
    fn gap_rejected() {
        let (net, nodes, links) = line();
        let flow = Flow::new(nodes[0], nodes[3]);
        let p = Path::new(vec![links[0], links[2]]);
        assert_eq!(
            p.is_valid(&net, flow),
            Err(PathError::Disconnected {
                prev: links[0],
                next: links[2]
            })
        );
    }

    #[test]
    fn unknown_link_rejected() {
        let (net, nodes, _) = line();
        let flow = Flow::new(nodes[0], nodes[3]);
        let p = Path::new(vec![LinkId::new(17)]);
        assert_eq!(
            p.is_valid(&net, flow),
            Err(PathError::UnknownLink(LinkId::new(17)))
        );
    }

    #[test]
    fn cycle_rejected() {
        let mut net = Network::new();
        let s = net.add_node(NodeKind::Source, "s");
        let a = net.add_node(NodeKind::Middle, "a");
        let t = net.add_node(NodeKind::Destination, "t");
        let e0 = net.add_link(s, a, Capacity::unit()).unwrap();
        let e1 = net.add_link(a, s, Capacity::unit()).unwrap();
        let _ = net.add_link(s, t, Capacity::unit());
        let e2 = net.add_link(s, t, Capacity::unit()).unwrap();
        let flow = Flow::new(s, t);
        let p = Path::new(vec![e0, e1, e2]);
        assert_eq!(p.is_valid(&net, flow), Err(PathError::RepeatedNode(s)));
    }

    #[test]
    fn display_and_iter() {
        let p: Path = [LinkId::new(0), LinkId::new(2)].into_iter().collect();
        assert_eq!(p.to_string(), "[e0 e2]");
        let collected: Vec<_> = (&p).into_iter().copied().collect();
        assert_eq!(collected, vec![LinkId::new(0), LinkId::new(2)]);
        assert_eq!(p.iter().count(), 2);
    }

    #[test]
    fn error_display() {
        assert_eq!(PathError::Empty.to_string(), "path is empty");
        assert_eq!(
            PathError::RepeatedNode(crate::NodeId::new(1)).to_string(),
            "path visits node v1 twice"
        );
    }
}
