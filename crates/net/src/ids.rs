//! Typed identifiers for nodes, links, and flows.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        #[cfg_attr(feature = "serde", serde(transparent))]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            #[must_use]
            pub const fn new(index: u32) -> $name {
                $name(index)
            }

            /// Returns the dense index, suitable for direct vector indexing.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            fn from(index: usize) -> $name {
                $name(u32::try_from(index).expect("identifier index exceeds u32::MAX"))
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// The identifier of a node (server or switch) within a [`Network`].
    ///
    /// Node identifiers are dense indices assigned in insertion order, so
    /// they can be used to index per-node vectors directly.
    ///
    /// [`Network`]: crate::Network
    NodeId,
    "v"
);

id_type!(
    /// The identifier of a directed link within a [`Network`].
    ///
    /// Link identifiers are dense indices assigned in insertion order, so
    /// they can be used to index per-link vectors (loads, residual
    /// capacities) directly.
    ///
    /// [`Network`]: crate::Network
    LinkId,
    "e"
);

id_type!(
    /// The identifier of a flow within a flow collection.
    ///
    /// Flow identifiers are positions in the `&[Flow]` slice describing the
    /// collection; allocations and routings are indexed by them.
    FlowId,
    "f"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7usize), n);
        assert_eq!(usize::from(n), 7);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(NodeId::new(3).to_string(), "v3");
        assert_eq!(LinkId::new(4).to_string(), "e4");
        assert_eq!(FlowId::new(5).to_string(), "f5");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(LinkId::new(1) < LinkId::new(2));
        let mut v = vec![FlowId::new(2), FlowId::new(0), FlowId::new(1)];
        v.sort();
        assert_eq!(v, vec![FlowId::new(0), FlowId::new(1), FlowId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn oversized_index_panics() {
        let _ = NodeId::from(usize::MAX);
    }
}
