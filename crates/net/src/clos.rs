//! The three-stage Clos network `C_n` and its generalized form.

#![allow(clippy::needless_range_loop)]

use clos_rational::Rational;

use crate::{Capacity, Flow, LinkId, Network, NodeId, NodeKind, Path};

/// Parameters of a (generalized) three-stage Clos network.
///
/// The paper's `C_n` (§2.1) fixes `tor_pairs = 2n`, `hosts_per_tor = n`,
/// `middle_switches = n`, and unit link capacities — obtained from
/// [`ClosParams::standard`]. The generalized form lets benchmarks explore
/// oversubscribed (`middle_switches < hosts_per_tor`) and overprovisioned
/// fabrics.
///
/// # Examples
///
/// ```
/// use clos_net::ClosParams;
///
/// let p = ClosParams::standard(3);
/// assert_eq!(p.middle_switches, 3);
/// assert_eq!(p.tor_pairs, 6);
/// assert_eq!(p.hosts_per_tor, 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClosParams {
    /// Number of middle switches `n` (equivalently, paths per flow).
    pub middle_switches: usize,
    /// Number of input ToR switches; the output side has the same count.
    pub tor_pairs: usize,
    /// Number of source servers per input ToR (and destinations per output
    /// ToR).
    pub hosts_per_tor: usize,
    /// Capacity of every link.
    pub link_capacity: Rational,
}

impl ClosParams {
    /// The paper's `C_n`: `n` middle switches, `2n` ToRs per side, `n` hosts
    /// per ToR, unit capacities.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn standard(n: usize) -> ClosParams {
        assert!(n >= 1, "Clos network size must be at least 1");
        ClosParams {
            middle_switches: n,
            tor_pairs: 2 * n,
            hosts_per_tor: n,
            link_capacity: Rational::ONE,
        }
    }

    fn validate(self) {
        assert!(self.middle_switches >= 1, "need at least one middle switch");
        assert!(self.tor_pairs >= 1, "need at least one ToR pair");
        assert!(self.hosts_per_tor >= 1, "need at least one host per ToR");
        assert!(
            self.link_capacity.is_positive(),
            "link capacity must be positive"
        );
    }
}

/// Where a node sits within a Clos network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum NodeLoc {
    Source { tor: usize, host: usize },
    InputTor { tor: usize },
    Middle { middle: usize },
    OutputTor { tor: usize },
    Destination { tor: usize, host: usize },
}

/// Where a link sits within a Clos network.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LinkLoc {
    HostUplink { tor: usize, host: usize },
    Uplink { tor: usize, middle: usize },
    Downlink { middle: usize, tor: usize },
    HostDownlink { tor: usize, host: usize },
}

/// The three-stage Clos network `C_n` of the paper (§2.1, Figure 1a).
///
/// Sources `s_i^j` attach to input ToR switches `I_i`; each `I_i` has one
/// uplink to every middle switch `M_m`; each `M_m` has one downlink to every
/// output ToR `O_i`; destinations `t_i^j` attach to output ToRs. Every
/// source–destination pair is therefore connected by exactly
/// `middle_switches` link-disjoint (inside the fabric) paths, one per middle
/// switch, and routing a flow is equivalent to choosing its middle switch.
///
/// Indices are **0-based** throughout (the paper is 1-based).
///
/// # Examples
///
/// ```
/// use clos_net::{ClosNetwork, Flow};
///
/// let clos = ClosNetwork::standard(2);
/// assert_eq!(clos.middle_count(), 2);
/// assert_eq!(clos.network().node_count(), 2 + 4 + 4 + 8 + 8);
///
/// let f = Flow::new(clos.source(0, 1), clos.destination(3, 0));
/// let paths = clos.paths_for(f);
/// assert_eq!(paths.len(), 2); // one per middle switch
/// assert_eq!(clos.middle_of_path(&paths[1]), Some(1));
/// ```
#[derive(Clone, Debug)]
pub struct ClosNetwork {
    net: Network,
    params: ClosParams,
    sources: Vec<Vec<NodeId>>,
    input_tors: Vec<NodeId>,
    middles: Vec<NodeId>,
    output_tors: Vec<NodeId>,
    destinations: Vec<Vec<NodeId>>,
    host_uplinks: Vec<Vec<LinkId>>,
    uplinks: Vec<Vec<LinkId>>,
    downlinks: Vec<Vec<LinkId>>,
    host_downlinks: Vec<Vec<LinkId>>,
    node_locs: Vec<NodeLoc>,
    link_locs: Vec<LinkLoc>,
}

impl ClosNetwork {
    /// Builds the paper's `C_n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn standard(n: usize) -> ClosNetwork {
        ClosNetwork::with_params(ClosParams::standard(n))
    }

    /// Builds a generalized Clos network from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the capacity is non-positive.
    #[must_use]
    pub fn with_params(params: ClosParams) -> ClosNetwork {
        params.validate();
        let cap = Capacity::finite_value(params.link_capacity);
        let mut net = Network::new();
        let mut node_locs = Vec::new();
        let mut link_locs = Vec::new();

        let mut sources = Vec::with_capacity(params.tor_pairs);
        let mut destinations = Vec::with_capacity(params.tor_pairs);
        let mut input_tors = Vec::with_capacity(params.tor_pairs);
        let mut output_tors = Vec::with_capacity(params.tor_pairs);
        let mut middles = Vec::with_capacity(params.middle_switches);

        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                row.push(net.add_node(NodeKind::Source, format!("s_{i}^{j}")));
                node_locs.push(NodeLoc::Source { tor: i, host: j });
            }
            sources.push(row);
        }
        for i in 0..params.tor_pairs {
            input_tors.push(net.add_node(NodeKind::InputTor, format!("I_{i}")));
            node_locs.push(NodeLoc::InputTor { tor: i });
        }
        for m in 0..params.middle_switches {
            middles.push(net.add_node(NodeKind::Middle, format!("M_{m}")));
            node_locs.push(NodeLoc::Middle { middle: m });
        }
        for i in 0..params.tor_pairs {
            output_tors.push(net.add_node(NodeKind::OutputTor, format!("O_{i}")));
            node_locs.push(NodeLoc::OutputTor { tor: i });
        }
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                row.push(net.add_node(NodeKind::Destination, format!("t_{i}^{j}")));
                node_locs.push(NodeLoc::Destination { tor: i, host: j });
            }
            destinations.push(row);
        }

        let mut host_uplinks = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                let e = net
                    .add_link(sources[i][j], input_tors[i], cap)
                    .expect("endpoints exist");
                link_locs.push(LinkLoc::HostUplink { tor: i, host: j });
                row.push(e);
            }
            host_uplinks.push(row);
        }
        let mut uplinks = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.middle_switches);
            for m in 0..params.middle_switches {
                let e = net
                    .add_link(input_tors[i], middles[m], cap)
                    .expect("endpoints exist");
                link_locs.push(LinkLoc::Uplink { tor: i, middle: m });
                row.push(e);
            }
            uplinks.push(row);
        }
        let mut downlinks = Vec::with_capacity(params.middle_switches);
        for m in 0..params.middle_switches {
            let mut row = Vec::with_capacity(params.tor_pairs);
            for i in 0..params.tor_pairs {
                let e = net
                    .add_link(middles[m], output_tors[i], cap)
                    .expect("endpoints exist");
                link_locs.push(LinkLoc::Downlink { middle: m, tor: i });
                row.push(e);
            }
            downlinks.push(row);
        }
        let mut host_downlinks = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                let e = net
                    .add_link(output_tors[i], destinations[i][j], cap)
                    .expect("endpoints exist");
                link_locs.push(LinkLoc::HostDownlink { tor: i, host: j });
                row.push(e);
            }
            host_downlinks.push(row);
        }

        ClosNetwork {
            net,
            params,
            sources,
            input_tors,
            middles,
            output_tors,
            destinations,
            host_uplinks,
            uplinks,
            downlinks,
            host_downlinks,
            node_locs,
            link_locs,
        }
    }

    /// Returns the underlying directed network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Returns the construction parameters.
    #[must_use]
    pub fn params(&self) -> ClosParams {
        self.params
    }

    /// Returns a copy of this network with the capacities in `overlay`
    /// substituted. Every node, link, and coordinate accessor of the
    /// copy matches the original identifier-for-identifier — only
    /// capacities change — so failure overlays (see
    /// [`crate::failure`]) compose with any dense per-link state built
    /// against the pristine fabric.
    ///
    /// # Panics
    ///
    /// Panics if `overlay` names a link outside this network.
    #[must_use]
    pub fn with_capacities(&self, overlay: &crate::CapacityMap) -> ClosNetwork {
        let mut out = self.clone();
        for (&link, &capacity) in overlay {
            out.net.set_link_capacity(link, capacity);
        }
        out
    }

    /// Returns the number of middle switches (the `n` of `C_n` for standard
    /// networks).
    #[must_use]
    pub fn middle_count(&self) -> usize {
        self.params.middle_switches
    }

    /// Returns the number of input (equivalently output) ToR switches.
    #[must_use]
    pub fn tor_count(&self) -> usize {
        self.params.tor_pairs
    }

    /// Returns the number of source servers per input ToR.
    #[must_use]
    pub fn hosts_per_tor(&self) -> usize {
        self.params.hosts_per_tor
    }

    /// Returns the source server `s_tor^host`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn source(&self, tor: usize, host: usize) -> NodeId {
        self.sources[tor][host]
    }

    /// Returns the destination server `t_tor^host`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn destination(&self, tor: usize, host: usize) -> NodeId {
        self.destinations[tor][host]
    }

    /// Returns the input ToR switch `I_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` is out of range.
    #[must_use]
    pub fn input_tor(&self, tor: usize) -> NodeId {
        self.input_tors[tor]
    }

    /// Returns the middle switch `M_middle`.
    ///
    /// # Panics
    ///
    /// Panics if `middle` is out of range.
    #[must_use]
    pub fn middle(&self, middle: usize) -> NodeId {
        self.middles[middle]
    }

    /// Returns the output ToR switch `O_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` is out of range.
    #[must_use]
    pub fn output_tor(&self, tor: usize) -> NodeId {
        self.output_tors[tor]
    }

    /// Returns the link `s_tor^host → I_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn host_uplink(&self, tor: usize, host: usize) -> LinkId {
        self.host_uplinks[tor][host]
    }

    /// Returns the link `I_tor → M_middle`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `middle` is out of range.
    #[must_use]
    pub fn uplink(&self, tor: usize, middle: usize) -> LinkId {
        self.uplinks[tor][middle]
    }

    /// Returns the link `M_middle → O_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `middle` or `tor` is out of range.
    #[must_use]
    pub fn downlink(&self, middle: usize, tor: usize) -> LinkId {
        self.downlinks[middle][tor]
    }

    /// Returns the link `O_tor → t_tor^host`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn host_downlink(&self, tor: usize, host: usize) -> LinkId {
        self.host_downlinks[tor][host]
    }

    /// Returns the `(tor, host)` coordinates of a source server, or
    /// `None` if `node` is not a source of this network.
    #[must_use]
    pub fn source_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        match self.node_locs.get(node.index()) {
            Some(&NodeLoc::Source { tor, host }) => Some((tor, host)),
            _ => None,
        }
    }

    /// Returns the `(tor, host)` coordinates of a destination server, or
    /// `None` if `node` is not a destination of this network.
    #[must_use]
    pub fn destination_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        match self.node_locs.get(node.index()) {
            Some(&NodeLoc::Destination { tor, host }) => Some((tor, host)),
            _ => None,
        }
    }

    /// Returns the path for `flow` through middle switch `middle`:
    /// `s → I → M → O → t` (four links).
    ///
    /// # Panics
    ///
    /// Panics if `middle` is out of range or the flow endpoints are not a
    /// source/destination of this network.
    #[must_use]
    pub fn path_via(&self, flow: Flow, middle: usize) -> Path {
        Path::new(self.links_via(flow, middle).to_vec())
    }

    /// Returns the four link ids of `flow`'s path through middle switch
    /// `middle` (`s → I → M → O → t`) without allocating — the raw
    /// material compiled into dense incidence tables by the evaluation
    /// pipeline (`clos-core`'s `CompiledInstance`).
    ///
    /// # Panics
    ///
    /// Panics if `middle` is out of range or the flow endpoints are not a
    /// source/destination of this network.
    #[must_use]
    pub fn links_via(&self, flow: Flow, middle: usize) -> [LinkId; 4] {
        assert!(
            middle < self.params.middle_switches,
            "middle switch {middle} out of range (have {})",
            self.params.middle_switches
        );
        let (si, sj) = crate::network::expect_server_coords(
            flow.src(),
            NodeKind::Source,
            self.source_coords(flow.src()),
        );
        let (ti, tj) = crate::network::expect_server_coords(
            flow.dst(),
            NodeKind::Destination,
            self.destination_coords(flow.dst()),
        );
        [
            self.host_uplinks[si][sj],
            self.uplinks[si][middle],
            self.downlinks[middle][ti],
            self.host_downlinks[ti][tj],
        ]
    }

    /// Returns all `middle_count()` paths for `flow`, indexed by middle
    /// switch.
    ///
    /// # Panics
    ///
    /// Panics if the flow endpoints are not a source/destination of this
    /// network.
    #[must_use]
    pub fn paths_for(&self, flow: Flow) -> Vec<Path> {
        (0..self.params.middle_switches)
            .map(|m| self.path_via(flow, m))
            .collect()
    }

    /// Returns the middle switch a path traverses, or `None` if the path
    /// does not contain an uplink of this network.
    #[must_use]
    pub fn middle_of_path(&self, path: &Path) -> Option<usize> {
        path.links()
            .iter()
            .find_map(|&e| match self.link_locs.get(e.index()) {
                Some(LinkLoc::Uplink { middle, .. }) => Some(*middle),
                _ => None,
            })
    }

    /// Returns the input ToR index of a flow's source.
    ///
    /// # Panics
    ///
    /// Panics if the flow's source is not a source of this network.
    #[must_use]
    pub fn src_tor(&self, flow: Flow) -> usize {
        crate::network::expect_server_coords(
            flow.src(),
            NodeKind::Source,
            self.source_coords(flow.src()),
        )
        .0
    }

    /// Returns the output ToR index of a flow's destination.
    ///
    /// # Panics
    ///
    /// Panics if the flow's destination is not a destination of this network.
    #[must_use]
    pub fn dst_tor(&self, flow: Flow) -> usize {
        crate::network::expect_server_coords(
            flow.dst(),
            NodeKind::Destination,
            self.destination_coords(flow.dst()),
        )
        .0
    }
}

impl crate::Fabric for ClosNetwork {
    fn network(&self) -> &Network {
        &self.net
    }

    fn class_count(&self) -> usize {
        self.params.middle_switches
    }

    fn append_links_via(&self, flow: Flow, class: usize, out: &mut Vec<LinkId>) {
        out.extend_from_slice(&self.links_via(flow, class));
    }

    fn class_of_path(&self, path: &Path) -> Option<usize> {
        self.middle_of_path(path)
    }

    fn source_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        ClosNetwork::source_coords(self, node)
    }

    fn destination_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        ClosNetwork::destination_coords(self, node)
    }

    fn class_signature(&self, class: usize) -> (usize, Vec<Capacity>) {
        // A middle switch's orbit is determined by the capacities of its
        // uplinks and downlinks in ToR order: two middles with equal
        // vectors are exchanged by the relabeling automorphism, which
        // realizes the full symmetric group on each capacity class.
        let caps = (0..self.params.tor_pairs)
            .map(|t| self.net.link(self.uplinks[t][class]).capacity())
            .chain(
                (0..self.params.tor_pairs)
                    .map(|t| self.net.link(self.downlinks[class][t]).capacity()),
            )
            .collect();
        (0, caps)
    }

    fn with_capacities(&self, overlay: &crate::CapacityMap) -> ClosNetwork {
        ClosNetwork::with_capacities(self, overlay)
    }

    fn nominal_capacity(&self) -> Rational {
        self.params.link_capacity
    }

    fn max_path_len(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_counts_match_paper() {
        for n in 1..=4 {
            let clos = ClosNetwork::standard(n);
            // 2n^2 sources, 2n ToRs each side, n middles, 2n^2 destinations.
            assert_eq!(
                clos.network().node_count(),
                2 * n * n + 2 * n + n + 2 * n + 2 * n * n
            );
            // Links: 2n^2 host uplinks + 2n*n uplinks + n*2n downlinks + 2n^2 host downlinks.
            assert_eq!(clos.network().link_count(), 8 * n * n);
            assert_eq!(clos.middle_count(), n);
            assert_eq!(clos.tor_count(), 2 * n);
            assert_eq!(clos.hosts_per_tor(), n);
        }
    }

    #[test]
    fn labels_follow_paper_notation() {
        let clos = ClosNetwork::standard(2);
        assert_eq!(clos.network().node(clos.source(1, 0)).label(), "s_1^0");
        assert_eq!(clos.network().node(clos.input_tor(3)).label(), "I_3");
        assert_eq!(clos.network().node(clos.middle(1)).label(), "M_1");
        assert_eq!(clos.network().node(clos.output_tor(0)).label(), "O_0");
        assert_eq!(clos.network().node(clos.destination(2, 1)).label(), "t_2^1");
    }

    #[test]
    fn links_connect_the_right_nodes() {
        let clos = ClosNetwork::standard(3);
        let net = clos.network();
        let e = clos.uplink(4, 2);
        assert_eq!(net.link(e).src(), clos.input_tor(4));
        assert_eq!(net.link(e).dst(), clos.middle(2));
        let e = clos.downlink(1, 5);
        assert_eq!(net.link(e).src(), clos.middle(1));
        assert_eq!(net.link(e).dst(), clos.output_tor(5));
        let e = clos.host_uplink(2, 1);
        assert_eq!(net.link(e).src(), clos.source(2, 1));
        assert_eq!(net.link(e).dst(), clos.input_tor(2));
        let e = clos.host_downlink(0, 2);
        assert_eq!(net.link(e).src(), clos.output_tor(0));
        assert_eq!(net.link(e).dst(), clos.destination(0, 2));
    }

    #[test]
    fn all_links_have_unit_capacity_by_default() {
        let clos = ClosNetwork::standard(2);
        assert!(clos
            .network()
            .links()
            .all(|l| l.capacity() == Capacity::unit()));
    }

    #[test]
    fn paths_are_valid_and_distinct() {
        let clos = ClosNetwork::standard(3);
        let flow = Flow::new(clos.source(0, 2), clos.destination(5, 1));
        let paths = clos.paths_for(flow);
        assert_eq!(paths.len(), 3);
        for (m, p) in paths.iter().enumerate() {
            assert!(p.is_valid(clos.network(), flow).is_ok());
            assert_eq!(clos.middle_of_path(p), Some(m));
        }
        assert_ne!(paths[0], paths[1]);
        // Paths share only the host links.
        assert_eq!(paths[0].links()[0], paths[1].links()[0]);
        assert_eq!(paths[0].links()[3], paths[1].links()[3]);
        assert_ne!(paths[0].links()[1], paths[1].links()[1]);
        assert_ne!(paths[0].links()[2], paths[1].links()[2]);
    }

    #[test]
    fn intra_tor_pair_still_crosses_a_middle_switch() {
        // Even (s_0^0, t_0^0) transits the fabric: input and output stages
        // are distinct layers (Figure 1a).
        let clos = ClosNetwork::standard(2);
        let flow = Flow::new(clos.source(0, 0), clos.destination(0, 0));
        let p = clos.path_via(flow, 1);
        assert_eq!(p.len(), 4);
        assert!(p.contains(clos.uplink(0, 1)));
        assert!(p.contains(clos.downlink(1, 0)));
    }

    #[test]
    fn coordinate_round_trips() {
        let clos = ClosNetwork::standard(3);
        assert_eq!(clos.source_coords(clos.source(4, 2)), Some((4, 2)));
        assert_eq!(
            clos.destination_coords(clos.destination(1, 0)),
            Some((1, 0))
        );
        let f = Flow::new(clos.source(4, 2), clos.destination(1, 0));
        assert_eq!(clos.src_tor(f), 4);
        assert_eq!(clos.dst_tor(f), 1);
    }

    #[test]
    fn source_coords_rejects_non_source() {
        let clos = ClosNetwork::standard(2);
        assert_eq!(clos.source_coords(clos.middle(0)), None);
        assert_eq!(clos.source_coords(clos.destination(0, 0)), None);
        assert_eq!(clos.destination_coords(clos.source(0, 0)), None);
        assert_eq!(clos.source_coords(NodeId::new(u32::MAX)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn path_via_rejects_bad_middle() {
        let clos = ClosNetwork::standard(2);
        let f = Flow::new(clos.source(0, 0), clos.destination(0, 0));
        let _ = clos.path_via(f, 2);
    }

    #[test]
    fn generalized_params() {
        let params = ClosParams {
            middle_switches: 2,
            tor_pairs: 3,
            hosts_per_tor: 4,
            link_capacity: Rational::new(5, 2),
        };
        let clos = ClosNetwork::with_params(params);
        assert_eq!(clos.params(), params);
        assert_eq!(clos.tor_count(), 3);
        assert_eq!(clos.hosts_per_tor(), 4);
        assert_eq!(clos.middle_count(), 2);
        assert_eq!(
            clos.network().link(clos.uplink(0, 0)).capacity(),
            Capacity::finite_value(Rational::new(5, 2))
        );
        // 3*4 host-up + 3*2 up + 2*3 down + 3*4 host-down.
        assert_eq!(clos.network().link_count(), 12 + 6 + 6 + 12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_size_rejected() {
        let _ = ClosNetwork::standard(0);
    }

    #[test]
    fn middle_of_foreign_path_is_none() {
        let clos = ClosNetwork::standard(2);
        let p = Path::new(vec![clos.host_uplink(0, 0)]);
        assert_eq!(clos.middle_of_path(&p), None);
        let p = Path::new(vec![LinkId::new(9999)]);
        assert_eq!(clos.middle_of_path(&p), None);
    }
}
