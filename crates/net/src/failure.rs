//! Deterministic, seeded failure models for Clos fabrics.
//!
//! The paper's gaps are proven on pristine symmetric fabrics; this
//! module supplies the machinery for asking how they behave as the
//! fabric degrades. Failures never rewrite the topology: they are
//! expressed as [`CapacityMap`] *overlays* — new absolute capacities
//! for a subset of links — applied via
//! [`ClosNetwork::with_capacities`], so every [`NodeId`] and
//! [`LinkId`] stays stable across any failure history. A removed
//! middle switch is simply a middle whose fabric links all carry zero
//! capacity; dense per-link vectors built before the failure remain
//! valid after it.
//!
//! Three failure shapes from the data-center literature are modelled
//! (cf. Bankhamer, Elsässer & Schmid, arXiv 2108.02136, for the local
//! fast-reroute setting they motivate):
//!
//! * [`FailureEvent::DegradeLink`] — a single fabric link loses a
//!   fraction of its capacity (optics aging, partial lane failure);
//! * [`FailureEvent::RemoveMiddle`] — a whole middle switch goes dark
//!   (power/firmware), zeroing all of its uplinks and downlinks;
//! * [`FailureEvent::PodFailure`] — a correlated event degrades every
//!   fabric link touching one ToR pair (shared power/cooling domain).
//!
//! A [`FailureSchedule`] is an ordered list of events; `overlay_at(k)`
//! folds the first `k` into one cumulative overlay. Schedules are
//! generated from a seed with an inline SplitMix64 generator — no
//! external RNG dependency — so every consumer (experiments, churn,
//! CI byte-diffs across thread counts) sees the identical sequence.
//!
//! [`NodeId`]: crate::NodeId

use std::collections::BTreeMap;

use clos_rational::Rational;

use crate::{Capacity, ClosNetwork, LinkId};

/// New absolute capacities for a subset of links, keyed by stable
/// [`LinkId`]. A `BTreeMap` keeps iteration (and hence application and
/// `Debug` output) in deterministic identifier order.
pub type CapacityMap = BTreeMap<LinkId, Capacity>;

/// One failure event, expressed in Clos coordinates so schedules stay
/// meaningful across structurally identical fabrics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureEvent {
    /// Multiplies one fabric link's current capacity by `factor`
    /// (`0 <= factor < 1`; zero removes the link).
    DegradeLink {
        /// The degraded link.
        link: LinkId,
        /// The multiplicative survival factor.
        factor: Rational,
    },
    /// Removes middle switch `middle`: all of its uplinks and
    /// downlinks drop to zero capacity.
    RemoveMiddle {
        /// The removed middle switch index.
        middle: usize,
    },
    /// Correlated pod event: every fabric uplink of input ToR `tor`
    /// and every fabric downlink of output ToR `tor` is multiplied by
    /// `factor`.
    PodFailure {
        /// The affected ToR pair index.
        tor: usize,
        /// The multiplicative survival factor.
        factor: Rational,
    },
}

/// An ordered, reproducible sequence of [`FailureEvent`]s.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FailureSchedule {
    events: Vec<FailureEvent>,
}

/// SplitMix64: the tiny, well-studied seed expander (Steele et al.,
/// "Fast splittable pseudorandom number generators"). Inlined so the
/// base `clos-net` crate keeps its zero-dependency RNG story while
/// schedules stay bit-reproducible everywhere.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n`. The modulo bias is below `n / 2^64`,
    /// irrelevant for the single-digit ranges used here.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

impl FailureSchedule {
    /// Wraps an explicit event list.
    #[must_use]
    pub fn new(events: Vec<FailureEvent>) -> FailureSchedule {
        FailureSchedule { events }
    }

    /// Generates `count` events for `clos` from `seed`, deterministic
    /// per `(clos dimensions, seed, count)`.
    ///
    /// The mix is half single-link degradations (factor 1/2), a
    /// quarter middle removals, and a quarter correlated pod events
    /// (factor 1/2). Middle removals never take out the last surviving
    /// middle: a fully dark fabric starves everything and measures
    /// nothing, so the generator degrades a link of a surviving middle
    /// instead.
    #[must_use]
    pub fn random(clos: &ClosNetwork, seed: u64, count: usize) -> FailureSchedule {
        let n = clos.middle_count();
        let tors = clos.tor_count();
        let half = Rational::new(1, 2);
        let mut rng = SplitMix64(seed);
        let mut removed = vec![false; n];
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = rng.below(4);
            let event = match kind {
                0 | 1 => {
                    let up = rng.below(2) == 0;
                    let tor = rng.below(tors);
                    let middle = rng.below(n);
                    let link = if up {
                        clos.uplink(tor, middle)
                    } else {
                        clos.downlink(middle, tor)
                    };
                    FailureEvent::DegradeLink { link, factor: half }
                }
                2 => {
                    let surviving: Vec<usize> = (0..n).filter(|&m| !removed[m]).collect();
                    if surviving.len() > 1 {
                        let middle = surviving[rng.below(surviving.len())];
                        removed[middle] = true;
                        FailureEvent::RemoveMiddle { middle }
                    } else {
                        let tor = rng.below(tors);
                        FailureEvent::DegradeLink {
                            link: clos.uplink(tor, surviving[0]),
                            factor: half,
                        }
                    }
                }
                _ => FailureEvent::PodFailure {
                    tor: rng.below(tors),
                    factor: half,
                },
            };
            events.push(event);
        }
        FailureSchedule { events }
    }

    /// The events in schedule order.
    #[must_use]
    pub fn events(&self) -> &[FailureEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Folds the first `k` events into one cumulative overlay against
    /// the *pristine* capacities of `clos`. Degradations compound:
    /// two halvings of the same link leave a quarter of its capacity.
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the schedule length, if an event names a
    /// middle/ToR outside `clos`, or if a degraded link is infinite
    /// (no Clos fabric link is).
    #[must_use]
    pub fn overlay_at(&self, clos: &ClosNetwork, k: usize) -> CapacityMap {
        assert!(
            k <= self.events.len(),
            "overlay_at({k}) exceeds schedule length {}",
            self.events.len()
        );
        let mut overlay = CapacityMap::new();
        for event in &self.events[..k] {
            apply_event(clos, &mut overlay, event);
        }
        overlay
    }
}

/// Folds one event into a cumulative overlay: reads the link's current
/// (overlaid, else pristine) capacity and writes the degraded value.
///
/// # Panics
///
/// Panics if the event names a middle or ToR outside `clos`, or if an
/// affected link has infinite capacity (no Clos fabric link does).
pub fn apply_event(clos: &ClosNetwork, overlay: &mut CapacityMap, event: &FailureEvent) {
    let degrade = |overlay: &mut CapacityMap, link: LinkId, factor: Rational| {
        let current = overlay
            .get(&link)
            .copied()
            .unwrap_or_else(|| clos.network().link(link).capacity());
        let value = current
            .finite()
            .expect("failure overlays only degrade finite links");
        overlay.insert(link, Capacity::finite_value(value * factor));
    };
    match *event {
        FailureEvent::DegradeLink { link, factor } => degrade(overlay, link, factor),
        FailureEvent::RemoveMiddle { middle } => {
            for tor in 0..clos.tor_count() {
                degrade(overlay, clos.uplink(tor, middle), Rational::ZERO);
                degrade(overlay, clos.downlink(middle, tor), Rational::ZERO);
            }
        }
        FailureEvent::PodFailure { tor, factor } => {
            for middle in 0..clos.middle_count() {
                degrade(overlay, clos.uplink(tor, middle), factor);
                degrade(overlay, clos.downlink(middle, tor), factor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_reproducible_and_seed_sensitive() {
        let clos = ClosNetwork::standard(3);
        let a = FailureSchedule::random(&clos, 11, 12);
        let b = FailureSchedule::random(&clos, 11, 12);
        let c = FailureSchedule::random(&clos, 12, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn overlays_are_cumulative_and_compound() {
        let clos = ClosNetwork::standard(2);
        let link = clos.uplink(0, 0);
        let half = Rational::new(1, 2);
        let schedule = FailureSchedule::new(vec![
            FailureEvent::DegradeLink { link, factor: half },
            FailureEvent::DegradeLink { link, factor: half },
        ]);
        let one = schedule.overlay_at(&clos, 1);
        let two = schedule.overlay_at(&clos, 2);
        assert_eq!(one[&link], Capacity::finite_value(half));
        assert_eq!(two[&link], Capacity::finite_value(Rational::new(1, 4)));
        assert!(schedule.overlay_at(&clos, 0).is_empty());
    }

    #[test]
    fn middle_removal_zeroes_every_fabric_link_of_the_middle() {
        let clos = ClosNetwork::standard(3);
        let schedule = FailureSchedule::new(vec![FailureEvent::RemoveMiddle { middle: 1 }]);
        let overlay = schedule.overlay_at(&clos, 1);
        assert_eq!(overlay.len(), 2 * clos.tor_count());
        for tor in 0..clos.tor_count() {
            assert_eq!(
                overlay[&clos.uplink(tor, 1)],
                Capacity::finite_value(Rational::ZERO)
            );
            assert_eq!(
                overlay[&clos.downlink(1, tor)],
                Capacity::finite_value(Rational::ZERO)
            );
        }
    }

    #[test]
    fn random_schedules_never_remove_every_middle() {
        for n in [2usize, 3] {
            let clos = ClosNetwork::standard(n);
            for seed in 0..32 {
                let schedule = FailureSchedule::random(&clos, seed, 24);
                let removed = schedule
                    .events()
                    .iter()
                    .filter(|e| matches!(e, FailureEvent::RemoveMiddle { .. }))
                    .count();
                assert!(removed < n, "seed {seed} removed all {n} middles");
            }
        }
    }

    #[test]
    fn with_capacities_keeps_identifiers_stable() {
        let clos = ClosNetwork::standard(2);
        let schedule = FailureSchedule::new(vec![FailureEvent::RemoveMiddle { middle: 0 }]);
        let overlay = schedule.overlay_at(&clos, 1);
        let failed = clos.with_capacities(&overlay);
        assert_eq!(
            failed.network().link_count(),
            clos.network().link_count(),
            "overlays must not add or remove links"
        );
        assert_eq!(failed.uplink(1, 1), clos.uplink(1, 1));
        assert_eq!(
            failed.network().link(clos.uplink(0, 0)).capacity(),
            Capacity::finite_value(Rational::ZERO)
        );
        assert_eq!(
            failed.network().link(clos.uplink(0, 1)).capacity(),
            Capacity::unit()
        );
    }
}
