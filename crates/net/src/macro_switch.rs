//! The macro-switch abstraction `MS_n`.

#![allow(clippy::needless_range_loop)]

use crate::{Capacity, ClosParams, Flow, LinkId, Network, NodeId, NodeKind, Path, Routing};

/// The macro-switch abstraction `MS_n` of a Clos network (§2.1, Figure 1b).
///
/// The middle stage of the Clos network is replaced by a complete bipartite
/// graph of **infinite-capacity** links from every input ToR to every output
/// ToR, emulating one giant switch connecting all sources to all
/// destinations. Only the server↔ToR links (unit capacity in the standard
/// model) can constrain rates, so a flow's macro-switch max-min rate depends
/// only on how many flows share its first and last hop.
///
/// There is exactly one path per flow, hence a unique routing
/// ([`MacroSwitch::routing`]) and a unique max-min fair allocation per flow
/// collection — the idealized reference point that the paper's three results
/// compare Clos networks against.
///
/// # Examples
///
/// ```
/// use clos_net::{Flow, MacroSwitch};
///
/// let ms = MacroSwitch::standard(2);
/// let f = Flow::new(ms.source(0, 0), ms.destination(3, 1));
/// let p = ms.path(f);
/// assert_eq!(p.len(), 3); // server→ToR, ToR→ToR mesh, ToR→server
/// assert!(p.is_valid(ms.network(), f).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct MacroSwitch {
    net: Network,
    params: ClosParams,
    sources: Vec<Vec<NodeId>>,
    input_tors: Vec<NodeId>,
    output_tors: Vec<NodeId>,
    destinations: Vec<Vec<NodeId>>,
    host_uplinks: Vec<Vec<LinkId>>,
    mesh: Vec<Vec<LinkId>>,
    host_downlinks: Vec<Vec<LinkId>>,
    coords: Vec<MsLoc>,
}

#[derive(Clone, Copy, Debug)]
enum MsLoc {
    Source { tor: usize, host: usize },
    InputTor,
    OutputTor,
    Destination { tor: usize, host: usize },
}

impl MacroSwitch {
    /// Builds the paper's `MS_n`: the macro-switch of `C_n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn standard(n: usize) -> MacroSwitch {
        MacroSwitch::with_params(ClosParams::standard(n))
    }

    /// Builds the macro-switch abstraction of the Clos network described by
    /// `params`: same servers and ToRs, middle stage replaced by an
    /// infinite-capacity mesh.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the capacity is non-positive.
    #[must_use]
    pub fn with_params(params: ClosParams) -> MacroSwitch {
        assert!(params.tor_pairs >= 1, "need at least one ToR pair");
        assert!(params.hosts_per_tor >= 1, "need at least one host per ToR");
        assert!(
            params.link_capacity.is_positive(),
            "link capacity must be positive"
        );
        let cap = Capacity::finite_value(params.link_capacity);
        let mut net = Network::new();
        let mut coords = Vec::new();

        let mut sources = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                row.push(net.add_node(NodeKind::Source, format!("s_{i}^{j}")));
                coords.push(MsLoc::Source { tor: i, host: j });
            }
            sources.push(row);
        }
        let mut input_tors = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            input_tors.push(net.add_node(NodeKind::InputTor, format!("I_{i}")));
            coords.push(MsLoc::InputTor);
        }
        let mut output_tors = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            output_tors.push(net.add_node(NodeKind::OutputTor, format!("O_{i}")));
            coords.push(MsLoc::OutputTor);
        }
        let mut destinations = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                row.push(net.add_node(NodeKind::Destination, format!("t_{i}^{j}")));
                coords.push(MsLoc::Destination { tor: i, host: j });
            }
            destinations.push(row);
        }

        let mut host_uplinks = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                row.push(
                    net.add_link(sources[i][j], input_tors[i], cap)
                        .expect("endpoints exist"),
                );
            }
            host_uplinks.push(row);
        }
        let mut mesh = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.tor_pairs);
            for o in 0..params.tor_pairs {
                row.push(
                    net.add_link(input_tors[i], output_tors[o], Capacity::Infinite)
                        .expect("endpoints exist"),
                );
            }
            mesh.push(row);
        }
        let mut host_downlinks = Vec::with_capacity(params.tor_pairs);
        for i in 0..params.tor_pairs {
            let mut row = Vec::with_capacity(params.hosts_per_tor);
            for j in 0..params.hosts_per_tor {
                row.push(
                    net.add_link(output_tors[i], destinations[i][j], cap)
                        .expect("endpoints exist"),
                );
            }
            host_downlinks.push(row);
        }

        MacroSwitch {
            net,
            params,
            sources,
            input_tors,
            output_tors,
            destinations,
            host_uplinks,
            mesh,
            host_downlinks,
            coords,
        }
    }

    /// Returns the underlying directed network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Returns the construction parameters (shared with the corresponding
    /// Clos network).
    #[must_use]
    pub fn params(&self) -> ClosParams {
        self.params
    }

    /// Returns the number of input (equivalently output) ToR switches.
    #[must_use]
    pub fn tor_count(&self) -> usize {
        self.params.tor_pairs
    }

    /// Returns the number of source servers per input ToR.
    #[must_use]
    pub fn hosts_per_tor(&self) -> usize {
        self.params.hosts_per_tor
    }

    /// Returns the source server `s_tor^host`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn source(&self, tor: usize, host: usize) -> NodeId {
        self.sources[tor][host]
    }

    /// Returns the destination server `t_tor^host`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn destination(&self, tor: usize, host: usize) -> NodeId {
        self.destinations[tor][host]
    }

    /// Returns the input ToR switch `I_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` is out of range.
    #[must_use]
    pub fn input_tor(&self, tor: usize) -> NodeId {
        self.input_tors[tor]
    }

    /// Returns the output ToR switch `O_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` is out of range.
    #[must_use]
    pub fn output_tor(&self, tor: usize) -> NodeId {
        self.output_tors[tor]
    }

    /// Returns the link `s_tor^host → I_tor`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn host_uplink(&self, tor: usize, host: usize) -> LinkId {
        self.host_uplinks[tor][host]
    }

    /// Returns the infinite-capacity mesh link `I_in → O_out`.
    ///
    /// # Panics
    ///
    /// Panics if `in_tor` or `out_tor` is out of range.
    #[must_use]
    pub fn mesh_link(&self, in_tor: usize, out_tor: usize) -> LinkId {
        self.mesh[in_tor][out_tor]
    }

    /// Returns the link `O_tor → t_tor^host`.
    ///
    /// # Panics
    ///
    /// Panics if `tor` or `host` is out of range.
    #[must_use]
    pub fn host_downlink(&self, tor: usize, host: usize) -> LinkId {
        self.host_downlinks[tor][host]
    }

    /// Returns the `(tor, host)` coordinates of a source server, or
    /// `None` if `node` is not a source of this macro-switch.
    #[must_use]
    pub fn source_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        match self.coords.get(node.index()) {
            Some(&MsLoc::Source { tor, host }) => Some((tor, host)),
            _ => None,
        }
    }

    /// Returns the `(tor, host)` coordinates of a destination server, or
    /// `None` if `node` is not a destination of this macro-switch.
    #[must_use]
    pub fn destination_coords(&self, node: NodeId) -> Option<(usize, usize)> {
        match self.coords.get(node.index()) {
            Some(&MsLoc::Destination { tor, host }) => Some((tor, host)),
            _ => None,
        }
    }

    /// Returns the unique path for `flow`: `s → I → O → t` (three links).
    ///
    /// # Panics
    ///
    /// Panics if the flow endpoints are not a source/destination of this
    /// macro-switch.
    #[must_use]
    pub fn path(&self, flow: Flow) -> Path {
        let (si, sj) = crate::network::expect_server_coords(
            flow.src(),
            NodeKind::Source,
            self.source_coords(flow.src()),
        );
        let (ti, tj) = crate::network::expect_server_coords(
            flow.dst(),
            NodeKind::Destination,
            self.destination_coords(flow.dst()),
        );
        Path::new(vec![
            self.host_uplinks[si][sj],
            self.mesh[si][ti],
            self.host_downlinks[ti][tj],
        ])
    }

    /// Returns the unique routing for a flow collection (§2.2: "in a
    /// macro-switch, there is a unique routing").
    ///
    /// # Panics
    ///
    /// Panics if any flow endpoint is not a source/destination of this
    /// macro-switch.
    #[must_use]
    pub fn routing(&self, flows: &[Flow]) -> Routing {
        flows.iter().map(|&f| self.path(f)).collect()
    }

    /// Maps a flow on the corresponding Clos network into this macro-switch
    /// by `(tor, host)` coordinates.
    ///
    /// Node identifiers differ between a [`ClosNetwork`] and its
    /// `MacroSwitch` (the middle switches shift the numbering), so flows
    /// must be translated rather than reused.
    ///
    /// # Panics
    ///
    /// Panics if the flow endpoints are not a source/destination of `clos`,
    /// or the coordinates exceed this macro-switch's dimensions.
    ///
    /// # Examples
    ///
    /// ```
    /// use clos_net::{ClosNetwork, Flow, MacroSwitch};
    ///
    /// let clos = ClosNetwork::standard(2);
    /// let ms = MacroSwitch::standard(2);
    /// let f = Flow::new(clos.source(1, 0), clos.destination(2, 1));
    /// let g = ms.translate_flow(&clos, f);
    /// assert_eq!(g.src(), ms.source(1, 0));
    /// assert_eq!(g.dst(), ms.destination(2, 1));
    /// ```
    ///
    /// [`ClosNetwork`]: crate::ClosNetwork
    #[must_use]
    pub fn translate_flow(&self, clos: &crate::ClosNetwork, flow: Flow) -> Flow {
        let (si, sj) = crate::network::expect_server_coords(
            flow.src(),
            NodeKind::Source,
            clos.source_coords(flow.src()),
        );
        let (ti, tj) = crate::network::expect_server_coords(
            flow.dst(),
            NodeKind::Destination,
            clos.destination_coords(flow.dst()),
        );
        Flow::new(self.source(si, sj), self.destination(ti, tj))
    }

    /// Translates a whole flow collection from the corresponding Clos
    /// network; see [`MacroSwitch::translate_flow`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`MacroSwitch::translate_flow`].
    #[must_use]
    pub fn translate_flows(&self, clos: &crate::ClosNetwork, flows: &[Flow]) -> Vec<Flow> {
        flows
            .iter()
            .map(|&f| self.translate_flow(clos, f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosNetwork;

    #[test]
    fn standard_counts() {
        for n in 1..=3 {
            let ms = MacroSwitch::standard(n);
            let t = 2 * n;
            assert_eq!(ms.network().node_count(), 2 * n * n * 2 + 2 * t);
            // host links twice + t^2 mesh links.
            assert_eq!(ms.network().link_count(), 2 * 2 * n * n + t * t);
        }
    }

    #[test]
    fn mesh_links_are_infinite_host_links_finite() {
        let ms = MacroSwitch::standard(2);
        let net = ms.network();
        for i in 0..4 {
            for o in 0..4 {
                assert!(net.link(ms.mesh_link(i, o)).capacity().is_infinite());
            }
        }
        assert_eq!(net.link(ms.host_uplink(0, 0)).capacity(), Capacity::unit());
        assert_eq!(
            net.link(ms.host_downlink(3, 1)).capacity(),
            Capacity::unit()
        );
    }

    #[test]
    fn unique_path_is_valid() {
        let ms = MacroSwitch::standard(3);
        let f = Flow::new(ms.source(0, 2), ms.destination(5, 0));
        let p = ms.path(f);
        assert!(p.is_valid(ms.network(), f).is_ok());
        assert_eq!(p.len(), 3);
        assert!(p.contains(ms.mesh_link(0, 5)));
    }

    #[test]
    fn same_tor_pair_uses_diagonal_mesh_link() {
        let ms = MacroSwitch::standard(2);
        let f = Flow::new(ms.source(1, 0), ms.destination(1, 1));
        let p = ms.path(f);
        assert!(p.contains(ms.mesh_link(1, 1)));
    }

    #[test]
    fn routing_covers_all_flows() {
        let ms = MacroSwitch::standard(2);
        let flows = vec![
            Flow::new(ms.source(0, 0), ms.destination(1, 1)),
            Flow::new(ms.source(2, 1), ms.destination(0, 0)),
        ];
        let r = ms.routing(&flows);
        assert!(r.validate(ms.network(), &flows).is_ok());
    }

    #[test]
    fn translation_from_clos_by_coordinates() {
        let clos = ClosNetwork::standard(3);
        let ms = MacroSwitch::standard(3);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(5, 2)),
            Flow::new(clos.source(2, 1), clos.destination(2, 1)),
        ];
        let translated = ms.translate_flows(&clos, &flows);
        assert_eq!(translated[0].src(), ms.source(0, 0));
        assert_eq!(translated[0].dst(), ms.destination(5, 2));
        assert_eq!(translated[1].src(), ms.source(2, 1));
        assert_eq!(translated[1].dst(), ms.destination(2, 1));
        assert!(crate::validate_flows(ms.network(), &translated).is_ok());
    }

    #[test]
    fn coords_round_trip() {
        let ms = MacroSwitch::standard(2);
        assert_eq!(ms.source_coords(ms.source(3, 1)), Some((3, 1)));
        assert_eq!(ms.destination_coords(ms.destination(2, 0)), Some((2, 0)));
    }

    #[test]
    fn destination_coords_rejects_tor() {
        let ms = MacroSwitch::standard(2);
        assert_eq!(ms.destination_coords(ms.input_tor(0)), None);
        assert_eq!(ms.source_coords(ms.output_tor(0)), None);
    }

    #[test]
    fn params_accessors() {
        let ms = MacroSwitch::standard(2);
        assert_eq!(ms.tor_count(), 4);
        assert_eq!(ms.hosts_per_tor(), 2);
        assert_eq!(ms.params(), ClosParams::standard(2));
    }
}
