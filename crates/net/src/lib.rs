//! Topology model for the clos-routing workspace.
//!
//! This crate defines the two network models studied by Ferreira et al.
//! (PODC '24):
//!
//! * [`ClosNetwork`] — the three-stage Clos network `C_n` (§2.1): `2n` input
//!   top-of-rack (ToR) switches, `n` middle switches, `2n` output ToR
//!   switches, and `n` servers per ToR, with unit-capacity links. Every
//!   source–destination pair is connected by exactly `n` paths, one per
//!   middle switch. A generalized form with arbitrary ToR counts, hosts per
//!   ToR, middle-switch counts, and capacities is also supported.
//! * [`MacroSwitch`] — the macro-switch abstraction `MS_n`: the middle stage
//!   is replaced by a complete bipartite mesh of infinite-capacity links, so
//!   only the server↔ToR links constrain rates.
//!
//! Beyond the paper's topologies, the [`Fabric`] trait abstracts any
//! multi-stage fabric with per-flow candidate paths indexed by routing
//! class; [`BenesNetwork`] (log-depth, rearrangeably non-blocking) and
//! [`FatTree`] (k-ary, with edge-layer oversubscription and a collapsed
//! Clos-equivalent mode) implement it alongside [`ClosNetwork`].
//!
//! On top of the topologies it defines the traffic model: [`Flow`]s
//! (unsplittable source→destination demands, possibly many per pair),
//! [`Path`]s, and [`Routing`]s (an assignment of each flow to one path).
//!
//! # Examples
//!
//! Build `C_2`, route a flow through middle switch 1, and check the path:
//!
//! ```
//! use clos_net::{ClosNetwork, Flow};
//!
//! let clos = ClosNetwork::standard(2);
//! let flow = Flow::new(clos.source(0, 1), clos.destination(3, 0));
//! let path = clos.path_via(flow, 1);
//! assert_eq!(path.len(), 4); // server→ToR, ToR→middle, middle→ToR, ToR→server
//! assert!(path.is_valid(clos.network(), flow).is_ok());
//! ```

pub mod dot;

mod benes;
mod capacity;
mod clos;
mod fabric;
pub mod failure;
mod fat_tree;
mod flow;
mod ids;
mod macro_switch;
mod network;
mod path;
mod routing;

pub use crate::benes::BenesNetwork;
pub use crate::capacity::Capacity;
pub use crate::clos::{ClosNetwork, ClosParams};
pub use crate::fabric::Fabric;
pub use crate::failure::{apply_event, CapacityMap, FailureEvent, FailureSchedule};
pub use crate::fat_tree::FatTree;
pub use crate::flow::{validate_flows, Flow, FlowError};
pub use crate::ids::{FlowId, LinkId, NodeId};
pub use crate::macro_switch::MacroSwitch;
pub use crate::network::{expect_server_coords, Network, Node, NodeKind, TopologyError};
pub use crate::path::{Path, PathError};
pub use crate::routing::{Routing, RoutingError};
