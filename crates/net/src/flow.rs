//! Unsplittable flows.

use std::error::Error;
use std::fmt;

use crate::{Network, NodeId, NodeKind};

/// An unsplittable flow: a source–destination pair demanding capacity.
///
/// Multiple flows may map to the same pair (§2.2) — congestion control
/// accepts every offered flow, unlike the admission-control model of early
/// telephone networks. A flow carries no demand value: under max-min fair
/// congestion control its rate is an *output* of the allocation, not an
/// input.
///
/// Flow collections are plain `&[Flow]` slices; a flow's [`FlowId`] is its
/// position in the slice.
///
/// # Examples
///
/// ```
/// use clos_net::{ClosNetwork, Flow};
///
/// let clos = ClosNetwork::standard(2);
/// let f = Flow::new(clos.source(0, 0), clos.destination(1, 1));
/// assert_eq!(f.src(), clos.source(0, 0));
/// ```
///
/// [`FlowId`]: crate::FlowId
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Flow {
    src: NodeId,
    dst: NodeId,
}

impl Flow {
    /// Creates a flow from `src` to `dst`.
    #[must_use]
    pub const fn new(src: NodeId, dst: NodeId) -> Flow {
        Flow { src, dst }
    }

    /// Returns the source server.
    #[must_use]
    pub const fn src(self) -> NodeId {
        self.src
    }

    /// Returns the destination server.
    #[must_use]
    pub const fn dst(self) -> NodeId {
        self.dst
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

/// The error returned when a flow collection is malformed for a network.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FlowError {
    /// A flow endpoint does not exist in the network.
    UnknownEndpoint {
        /// The offending flow's position in the collection.
        flow: usize,
        /// The nonexistent node.
        node: NodeId,
    },
    /// A flow's source is not a [`NodeKind::Source`] node.
    NotASource {
        /// The offending flow's position in the collection.
        flow: usize,
        /// The node used as a source.
        node: NodeId,
    },
    /// A flow's destination is not a [`NodeKind::Destination`] node.
    NotADestination {
        /// The offending flow's position in the collection.
        flow: usize,
        /// The node used as a destination.
        node: NodeId,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::UnknownEndpoint { flow, node } => {
                write!(f, "flow {flow} references unknown node {node}")
            }
            FlowError::NotASource { flow, node } => {
                write!(f, "flow {flow} starts at non-source node {node}")
            }
            FlowError::NotADestination { flow, node } => {
                write!(f, "flow {flow} ends at non-destination node {node}")
            }
        }
    }
}

impl Error for FlowError {}

/// Validates that every flow starts at a source server and ends at a
/// destination server of `net`.
///
/// # Errors
///
/// Returns the first violation found, identifying the flow by its position.
///
/// # Examples
///
/// ```
/// use clos_net::{validate_flows, ClosNetwork, Flow};
///
/// let clos = ClosNetwork::standard(2);
/// let flows = [Flow::new(clos.source(0, 0), clos.destination(0, 0))];
/// validate_flows(clos.network(), &flows)?;
/// # Ok::<(), clos_net::FlowError>(())
/// ```
pub fn validate_flows(net: &Network, flows: &[Flow]) -> Result<(), FlowError> {
    for (i, flow) in flows.iter().enumerate() {
        for node in [flow.src, flow.dst] {
            if node.index() >= net.node_count() {
                return Err(FlowError::UnknownEndpoint { flow: i, node });
            }
        }
        if net.node(flow.src).kind() != NodeKind::Source {
            return Err(FlowError::NotASource {
                flow: i,
                node: flow.src,
            });
        }
        if net.node(flow.dst).kind() != NodeKind::Destination {
            return Err(FlowError::NotADestination {
                flow: i,
                node: flow.dst,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosNetwork;

    #[test]
    fn accessors_and_display() {
        let f = Flow::new(NodeId::new(1), NodeId::new(2));
        assert_eq!(f.src(), NodeId::new(1));
        assert_eq!(f.dst(), NodeId::new(2));
        assert_eq!(f.to_string(), "(v1 -> v2)");
    }

    #[test]
    fn valid_flows_pass() {
        let clos = ClosNetwork::standard(2);
        let flows = [
            Flow::new(clos.source(0, 0), clos.destination(3, 1)),
            Flow::new(clos.source(1, 1), clos.destination(0, 0)),
            // Repeated pairs are allowed.
            Flow::new(clos.source(1, 1), clos.destination(0, 0)),
        ];
        assert!(validate_flows(clos.network(), &flows).is_ok());
    }

    #[test]
    fn swapped_endpoints_rejected() {
        let clos = ClosNetwork::standard(2);
        let flows = [Flow::new(clos.destination(0, 0), clos.source(0, 0))];
        assert_eq!(
            validate_flows(clos.network(), &flows),
            Err(FlowError::NotASource {
                flow: 0,
                node: clos.destination(0, 0)
            })
        );
    }

    #[test]
    fn switch_endpoint_rejected() {
        let clos = ClosNetwork::standard(2);
        let flows = [Flow::new(clos.source(0, 0), clos.input_tor(0))];
        assert_eq!(
            validate_flows(clos.network(), &flows),
            Err(FlowError::NotADestination {
                flow: 0,
                node: clos.input_tor(0)
            })
        );
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let clos = ClosNetwork::standard(2);
        let ghost = NodeId::new(10_000);
        let flows = [Flow::new(clos.source(0, 0), ghost)];
        assert_eq!(
            validate_flows(clos.network(), &flows),
            Err(FlowError::UnknownEndpoint {
                flow: 0,
                node: ghost
            })
        );
    }

    #[test]
    fn error_positions_point_to_offender() {
        let clos = ClosNetwork::standard(2);
        let flows = [
            Flow::new(clos.source(0, 0), clos.destination(0, 0)),
            Flow::new(clos.source(0, 0), clos.input_tor(1)),
        ];
        match validate_flows(clos.network(), &flows) {
            Err(FlowError::NotADestination { flow, .. }) => assert_eq!(flow, 1),
            other => panic!("unexpected result: {other:?}"),
        }
    }
}
