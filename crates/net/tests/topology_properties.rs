//! Property-based and serde round-trip tests for the topology models.

use clos_net::{Capacity, ClosNetwork, ClosParams, Flow, MacroSwitch, NodeKind, Path, Routing};
use clos_rational::Rational;
use proptest::prelude::*;

fn params() -> impl Strategy<Value = ClosParams> {
    (1usize..=4, 1usize..=5, 1usize..=4, 1i128..=3).prop_map(|(m, t, h, c)| ClosParams {
        middle_switches: m,
        tor_pairs: t,
        hosts_per_tor: h,
        link_capacity: Rational::from_integer(c),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural counts of the generalized Clos network.
    #[test]
    fn clos_counts(p in params()) {
        let clos = ClosNetwork::with_params(p);
        let net = clos.network();
        let hosts = p.tor_pairs * p.hosts_per_tor;
        prop_assert_eq!(
            net.node_count(),
            2 * hosts + 2 * p.tor_pairs + p.middle_switches
        );
        prop_assert_eq!(
            net.link_count(),
            2 * hosts + 2 * p.tor_pairs * p.middle_switches
        );
        prop_assert_eq!(net.nodes_of_kind(NodeKind::Source).len(), hosts);
        prop_assert_eq!(net.nodes_of_kind(NodeKind::Middle).len(), p.middle_switches);
        // Every link has the configured capacity.
        prop_assert!(net
            .links()
            .all(|l| l.capacity() == Capacity::finite_value(p.link_capacity)));
    }

    /// Every source–destination pair has exactly `middle_switches` valid,
    /// pairwise fabric-disjoint paths.
    #[test]
    fn clos_paths_valid_and_disjoint(
        p in params(),
        st in 0usize..5, sh in 0usize..4, dt in 0usize..5, dh in 0usize..4,
    ) {
        let clos = ClosNetwork::with_params(p);
        let flow = Flow::new(
            clos.source(st % p.tor_pairs, sh % p.hosts_per_tor),
            clos.destination(dt % p.tor_pairs, dh % p.hosts_per_tor),
        );
        let paths = clos.paths_for(flow);
        prop_assert_eq!(paths.len(), p.middle_switches);
        for (m, path) in paths.iter().enumerate() {
            prop_assert!(path.is_valid(clos.network(), flow).is_ok());
            prop_assert_eq!(clos.middle_of_path(path), Some(m));
        }
        // Fabric links (positions 1 and 2) are pairwise distinct.
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                prop_assert_ne!(paths[i].links()[1], paths[j].links()[1]);
                prop_assert_ne!(paths[i].links()[2], paths[j].links()[2]);
            }
        }
    }

    /// The macro-switch shares server structure with the Clos network and
    /// its unique path is valid.
    #[test]
    fn macro_switch_consistency(
        p in params(),
        st in 0usize..5, sh in 0usize..4, dt in 0usize..5, dh in 0usize..4,
    ) {
        let clos = ClosNetwork::with_params(p);
        let ms = MacroSwitch::with_params(p);
        let (st, sh) = (st % p.tor_pairs, sh % p.hosts_per_tor);
        let (dt, dh) = (dt % p.tor_pairs, dh % p.hosts_per_tor);
        let clos_flow = Flow::new(clos.source(st, sh), clos.destination(dt, dh));
        let ms_flow = ms.translate_flow(&clos, clos_flow);
        prop_assert_eq!(ms.source_coords(ms_flow.src()), Some((st, sh)));
        prop_assert_eq!(ms.destination_coords(ms_flow.dst()), Some((dt, dh)));
        let path = ms.path(ms_flow);
        prop_assert!(path.is_valid(ms.network(), ms_flow).is_ok());
        prop_assert_eq!(path.len(), 3);
        // The mesh hop is infinite-capacity.
        let mesh = path.links()[1];
        prop_assert!(ms.network().link(mesh).capacity().is_infinite());
    }

    /// Random routings validate and flows_per_link inverts paths.
    #[test]
    fn routing_membership_inverts_paths(
        p in params(),
        picks in prop::collection::vec((0usize..5, 0usize..4, 0usize..5, 0usize..4, 0usize..4), 1..8),
    ) {
        let clos = ClosNetwork::with_params(p);
        let flows: Vec<Flow> = picks
            .iter()
            .map(|&(st, sh, dt, dh, _)| {
                Flow::new(
                    clos.source(st % p.tor_pairs, sh % p.hosts_per_tor),
                    clos.destination(dt % p.tor_pairs, dh % p.hosts_per_tor),
                )
            })
            .collect();
        let routing: Routing = flows
            .iter()
            .zip(&picks)
            .map(|(&f, &(_, _, _, _, m))| clos.path_via(f, m % p.middle_switches))
            .collect();
        prop_assert!(routing.validate(clos.network(), &flows).is_ok());
        let members = routing.flows_per_link(clos.network());
        for (i, path) in routing.paths().iter().enumerate() {
            for link in path.links() {
                prop_assert!(members[link.index()]
                    .iter()
                    .any(|f| f.index() == i));
            }
        }
        // Total memberships = sum of path lengths.
        let total: usize = members.iter().map(Vec::len).sum();
        prop_assert_eq!(total, routing.paths().iter().map(Path::len).sum::<usize>());
    }
}

#[cfg(feature = "serde")]
mod serde_round_trips {
    use super::*;

    #[test]
    fn network_round_trips_through_json() {
        let clos = ClosNetwork::standard(2);
        let json = serde_json::to_string(clos.network()).unwrap();
        let back: clos_net::Network = serde_json::from_str(&json).unwrap();
        assert_eq!(&back, clos.network());
    }

    #[test]
    fn flows_paths_routings_round_trip() {
        let clos = ClosNetwork::standard(2);
        let flows = vec![
            Flow::new(clos.source(0, 0), clos.destination(2, 1)),
            Flow::new(clos.source(1, 1), clos.destination(3, 0)),
        ];
        let routing: Routing = flows.iter().map(|&f| clos.path_via(f, 1)).collect();

        let json = serde_json::to_string(&flows).unwrap();
        let flows_back: Vec<Flow> = serde_json::from_str(&json).unwrap();
        assert_eq!(flows_back, flows);

        let json = serde_json::to_string(&routing).unwrap();
        let routing_back: Routing = serde_json::from_str(&json).unwrap();
        assert_eq!(routing_back, routing);
    }

    #[test]
    fn capacity_round_trips() {
        for cap in [
            Capacity::unit(),
            Capacity::Infinite,
            Capacity::finite_value(Rational::new(7, 3)),
        ] {
            let json = serde_json::to_string(&cap).unwrap();
            let back: Capacity = serde_json::from_str(&json).unwrap();
            assert_eq!(back, cap);
        }
    }

    #[test]
    fn params_round_trip() {
        let p = ClosParams::standard(3);
        let json = serde_json::to_string(&p).unwrap();
        let back: ClosParams = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
