//! Flow completion times: max-min fair congestion control versus
//! admission scheduling across offered loads (§7, discussion of R1).
//!
//! ```text
//! cargo run --release -p clos-bench --example fct_scheduling
//! ```

use clos_bench::table::Table;
use clos_net::ClosNetwork;
use clos_sim::{simulate_fct, FctConfig, PathPolicy, SizeDist, Transport};

fn main() {
    let clos = ClosNetwork::standard(2);
    let hosts = (clos.tor_count() * clos.hosts_per_tor()) as f64;

    let mut table = Table::new(vec![
        "load",
        "sizes",
        "transport",
        "mean FCT",
        "p99 FCT",
        "mean slowdown",
    ]);
    for &(size_dist, label) in &[
        (SizeDist::Fixed(1.0), "fixed(1)"),
        (SizeDist::Exponential(1.0), "exp(1)"),
    ] {
        for &load in &[0.4, 0.8, 1.2, 1.6] {
            let config = FctConfig {
                arrival_rate: load * hosts,
                size_dist,
                flow_count: 600,
                seed: 17,
            };
            for transport in [Transport::FairSharing, Transport::Scheduling] {
                let stats = simulate_fct(&clos, &config, transport, PathPolicy::LeastLoaded);
                table.row(vec![
                    format!("{load:.1}"),
                    label.to_string(),
                    match transport {
                        Transport::FairSharing => "fair-sharing".into(),
                        Transport::Scheduling => "scheduling".into(),
                    },
                    format!("{:.3}", stats.mean_fct),
                    format!("{:.3}", stats.p99_fct),
                    format!("{:.3}", stats.mean_slowdown),
                ]);
            }
        }
    }
    println!("FCT on C_2, Poisson arrivals, least-loaded path selection:\n");
    println!("{}", table.render());
    println!("As §7 argues, once the fabric saturates, delaying some flows so");
    println!("others run at link rate (scheduling) beats max-min fair sharing");
    println!("on mean FCT.");
}
