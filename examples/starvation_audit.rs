//! Starvation audit: how badly can the fairest routing starve a flow
//! relative to the macro-switch abstraction? (Theorem 4.3.)
//!
//! Sweeps the network size `n` and reports the starvation factor of the
//! type-3 flow in the paper's adversarial collection: its macro-switch
//! rate is always 1, yet its lex-max-min fair rate is exactly `1/n`.
//!
//! ```text
//! cargo run --release -p clos-bench --example starvation_audit
//! ```

use clos_bench::table::Table;
use clos_core::constructions::theorem_4_3;
use clos_fairness::verify_bottleneck_property;
use clos_rational::Rational;

fn main() {
    let mut table = Table::new(vec![
        "n",
        "flows",
        "MS rate (type 3)",
        "lex-MmF rate",
        "starvation factor",
        "certificate verified",
    ]);
    for n in [3usize, 4, 5, 6, 8, 12, 16, 24, 32] {
        let t = theorem_4_3(n);
        let macro_alloc = t.instance.macro_allocation();
        let cert = t.certificate();
        let verified = verify_bottleneck_property(
            t.instance.clos.network(),
            &t.instance.flows,
            &cert.routing,
            &cert.allocation,
            Rational::ZERO,
        )
        .is_ok();
        let ms_rate = macro_alloc.rate(t.type3_flow());
        let lex_rate = cert.allocation.rate(t.type3_flow());
        table.row(vec![
            n.to_string(),
            t.instance.flows.len().to_string(),
            ms_rate.to_string(),
            lex_rate.to_string(),
            (lex_rate / ms_rate).to_string(),
            verified.to_string(),
        ]);
    }
    println!("Theorem 4.3 — lex-max-min fairness starves the type-3 flow to 1/n:\n");
    println!("{}", table.render());
    println!("No constant-factor guarantee exists: the factor 1/n vanishes as");
    println!("the fabric grows. (§7 proposes relative max-min fairness as an");
    println!("open alternative.)");
}
