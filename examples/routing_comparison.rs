//! Routing comparison: ECMP vs greedy vs local-search vs Doom-Switch on
//! realistic workloads, measured as rate ratios against the macro-switch
//! (§6) and as throughput (Theorem 5.4's trade-off).
//!
//! ```text
//! cargo run --release -p clos-bench --example routing_comparison
//! ```

use clos_bench::table::Table;
use clos_core::doom_switch::doom_switch;
use clos_core::routers::{EcmpRouter, GreedyRouter, LocalSearchRouter, Router};
use clos_net::{ClosNetwork, MacroSwitch};
use clos_rational::TotalF64;
use clos_sim::{rate_ratio_study, summarize};
use clos_workloads::Workload;

fn main() {
    let n = 4;
    let clos = ClosNetwork::standard(n);
    let ms = MacroSwitch::standard(n);
    let hosts = clos.tor_count() * clos.hosts_per_tor();
    let workloads = [
        Workload::UniformRandom { flows: 2 * hosts },
        Workload::Permutation,
        Workload::Incast { senders: hosts / 2 },
        Workload::Zipf {
            flows: 2 * hosts,
            exponent: 1.2,
        },
    ];

    let mut table = Table::new(vec![
        "workload",
        "router",
        "min",
        "p50",
        "mean",
        "max",
        "throughput",
    ]);
    for w in &workloads {
        let flows = w.generate(&clos, 42);
        let ms_flows = ms.translate_flows(&clos, &flows);

        let mut routers: Vec<Box<dyn Router>> = vec![
            Box::new(EcmpRouter::new(42)),
            Box::new(GreedyRouter::new()),
            Box::new(LocalSearchRouter::default()),
        ];
        for router in &mut routers {
            let name = router.name().to_string();
            let study = rate_ratio_study(&clos, &ms, &flows, router.as_mut());
            let alloc =
                clos_fairness::max_min_fair::<TotalF64>(clos.network(), &flows, &study.routing)
                    .expect("finite links");
            table.row(vec![
                w.name(),
                name,
                format!("{:.3}", study.summary.min),
                format!("{:.3}", study.summary.p50),
                format!("{:.3}", study.summary.mean),
                format!("{:.3}", study.summary.max),
                format!("{:.3}", alloc.throughput().get()),
            ]);
        }

        // Doom-Switch: maximize throughput, damn the fairness.
        let doomed = doom_switch(&clos, &ms, &flows);
        let ms_alloc = clos_core::macro_switch::macro_max_min(&ms, &ms_flows);
        let ratios: Vec<f64> = doomed
            .allocation
            .rates()
            .iter()
            .zip(ms_alloc.rates())
            .map(|(c, m)| c.to_f64() / m.to_f64())
            .collect();
        let s = summarize(&ratios);
        table.row(vec![
            w.name(),
            "doom-switch".to_string(),
            format!("{:.3}", s.min),
            format!("{:.3}", s.p50),
            format!("{:.3}", s.mean),
            format!("{:.3}", s.max),
            format!("{:.3}", doomed.throughput().to_f64()),
        ]);
    }
    println!("Rate ratio (network / macro-switch) per flow, and total throughput,");
    println!("on C_{n}:\n");
    println!("{}", table.render());
    println!("ECMP's collisions and Doom-Switch's sacrifices both show up in the");
    println!("`min` column; Doom-Switch buys its throughput with starved flows.");
}
