//! Demand satisfaction: why the macro-switch abstraction is exact for
//! splittable flows (§1) and breaks for unsplittable ones (Theorem 4.2).
//!
//! Takes the paper's adversarial collection at its macro-switch max-min
//! rates and routes it twice: splittably (hose-model even split — always
//! fits) and unsplittably (exact search — provably impossible).
//!
//! ```text
//! cargo run --release -p clos-bench --example demand_satisfaction
//! ```

use clos_core::constructions::theorem_4_2;
use clos_core::replication::{find_feasible_routing, first_fit_routing};
use clos_core::splittable::demand_satisfaction;

fn main() {
    let n = 3;
    let t = theorem_4_2(n);
    let rates = t.instance.macro_allocation();
    println!(
        "Theorem 4.2 collection on C_{n}: {} flows at macro-switch max-min rates",
        t.instance.flows.len()
    );
    println!(
        "  rates: type 1 & 3 at 1, type 2 at 1/{n} (sorted head: {})",
        rates
            .sorted()
            .rates()
            .iter()
            .take(4)
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Splittable: the hose-model even split certifies feasibility.
    match demand_satisfaction(&t.instance.clos, &t.instance.flows, rates.rates()) {
        Ok(cert) => {
            println!("\nsplittable routing   : FEASIBLE");
            println!(
                "  even split over {} middle switches; max fabric load {} (capacity {})",
                t.instance.clos.middle_count(),
                cert.max_fabric_load,
                cert.capacity
            );
        }
        Err(e) => println!("\nsplittable routing   : infeasible ({e})"),
    }

    // Unsplittable: exact backtracking proves no routing exists.
    let exact = find_feasible_routing(&t.instance.clos, &t.instance.flows, rates.rates());
    println!(
        "unsplittable routing : {}",
        if exact.is_some() {
            "feasible (unexpected!)"
        } else {
            "INFEASIBLE — proven by exhausting all middle-switch assignments"
        }
    );
    let ff = first_fit_routing(&t.instance.clos, &t.instance.flows, rates.rates());
    println!(
        "first-fit heuristic  : {}",
        if ff.is_some() {
            "found a routing"
        } else {
            "stuck (as expected)"
        }
    );

    // Dropping the single type-3 flow restores unsplittable feasibility.
    let without = &t.instance.flows[..t.instance.flows.len() - 1];
    let without_rates = &rates.rates()[..rates.rates().len() - 1];
    let control = find_feasible_routing(&t.instance.clos, without, without_rates);
    println!(
        "\nwithout the type-3 flow: {}",
        if control.is_some() {
            "feasible — one flow's worth of integrality is the entire gap"
        } else {
            "still infeasible (unexpected!)"
        }
    );
    println!("\nThis is the paper's R2 in miniature: splittability (not capacity)");
    println!("is what makes the macro-switch abstraction exact.");
}
