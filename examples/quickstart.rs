//! Quickstart: build a Clos network and its macro-switch, offer a flow
//! collection, and see how routing changes the max-min fair allocation.
//!
//! ```text
//! cargo run --release -p clos-bench --example quickstart
//! ```

use clos_core::objectives::{lex_max_min, throughput_max_min};
use clos_fairness::max_min_fair;
use clos_net::{ClosNetwork, Flow, MacroSwitch};
use clos_rational::Rational;

fn main() {
    // The paper's C_2: 2 middle switches, 4 ToR pairs, 2 hosts per ToR,
    // unit-capacity links — and its idealized macro-switch abstraction.
    let clos = ClosNetwork::standard(2);
    let ms = MacroSwitch::standard(2);
    println!(
        "C_2: {} nodes, {} links; every flow has {} candidate paths",
        clos.network().node_count(),
        clos.network().link_count(),
        clos.middle_count()
    );

    // A small flow collection (Example 2.3 of the paper): three flows
    // share a source, two flows share its destinations, one is isolated.
    let flows = vec![
        Flow::new(clos.source(0, 1), clos.destination(0, 1)),
        Flow::new(clos.source(0, 1), clos.destination(1, 0)),
        Flow::new(clos.source(0, 1), clos.destination(1, 1)),
        Flow::new(clos.source(1, 0), clos.destination(1, 0)),
        Flow::new(clos.source(1, 1), clos.destination(1, 1)),
        Flow::new(clos.source(0, 0), clos.destination(0, 0)),
    ];

    // 1. The macro-switch reference: unique routing, unique max-min fair
    //    allocation.
    let ms_flows = ms.translate_flows(&clos, &flows);
    let ms_routing = ms.routing(&ms_flows);
    let ms_alloc = max_min_fair::<Rational>(ms.network(), &ms_flows, &ms_routing)
        .expect("host links are finite");
    println!("\nmacro-switch allocation : {}", ms_alloc);
    println!("  sorted a^             : {}", ms_alloc.sorted());
    println!("  throughput            : {}", ms_alloc.throughput());

    // 2. One concrete routing in the Clos network: all flows through
    //    middle switch 0. Sharing the fabric costs several flows dearly.
    let naive: clos_net::Routing = flows.iter().map(|&f| clos.path_via(f, 0)).collect();
    let naive_alloc =
        max_min_fair::<Rational>(clos.network(), &flows, &naive).expect("Clos links are finite");
    println!("\nall-via-M_0 allocation  : {}", naive_alloc);
    println!("  sorted a^             : {}", naive_alloc.sorted());

    // 3. The two routing objectives of the paper, computed exactly by
    //    exhaustive search over all routings.
    let lex = lex_max_min(&clos, &flows);
    println!("\nlex-max-min fair        : {}", lex.allocation.sorted());
    let tput = throughput_max_min(&clos, &flows);
    println!(
        "throughput-max-min fair : {} (throughput {})",
        tput.allocation.sorted(),
        tput.throughput()
    );

    // The punchline of the paper: even the best routing cannot replicate
    // the macro-switch.
    assert!(ms_alloc.sorted() > lex.allocation.sorted());
    println!("\nEven the lex-optimal routing is strictly below the macro-switch:");
    println!("  {} < {}", lex.allocation.sorted(), ms_alloc.sorted());
}
